#include <algorithm>
#include <ostream>

#include "api/api.h"
#include "obs/metrics_sink.h"
#include "parser/parser.h"

namespace verso {

namespace {

/// Connection-layer handles into the global registry, bound once.
struct ConnMetrics {
  Counter& sessions_opened;
  Counter& pins;
  Histogram& pin_us;
  Counter& deliveries;
  Counter& delivered_facts;
  Histogram& delivery_fanout_us;

  static ConnMetrics& Get() {
    static ConnMetrics* metrics =
        new ConnMetrics(MetricsRegistry::Global());  // never dies
    return *metrics;
  }

  explicit ConnMetrics(MetricsRegistry& registry)
      : sessions_opened(registry.GetCounter("session.opened")),
        pins(registry.GetCounter("session.pins")),
        pin_us(registry.GetHistogram("session.pin_us")),
        deliveries(registry.GetCounter("subscription.deliveries")),
        delivered_facts(registry.GetCounter("subscription.delivered_facts")),
        delivery_fanout_us(
            registry.GetHistogram("subscription.fanout_us")) {}
};

}  // namespace

Connection::Connection(ConnectionOptions options)
    : options_(options),
      engine_(std::make_unique<Engine>()),
      // The bridge is permanent: every layer below traces through it, so
      // the registry hears storage, evaluation, and view events whether
      // or not the client wired a sink of its own.
      metrics_trace_(std::make_unique<MetricsTraceSink>(
          MetricsRegistry::Global(), options.trace)) {}

Connection::~Connection() = default;

void Connection::Finish() {
  db_->set_trace(metrics_trace_.get());
  catalog_ = std::make_unique<ViewCatalog>(*engine_, metrics_trace_.get());
  catalog_->set_num_threads(options_.query.num_threads);
  catalog_->Attach(*db_);
  catalog_->SetDeltaSink(this);
}

Result<std::unique_ptr<Connection>> Connection::Open(
    const std::string& dir, ConnectionOptions options) {
  std::unique_ptr<Connection> conn(new Connection(options));
  DatabaseOptions db_options;
  db_options.env = options.env;
  db_options.wal_retry_limit = options.wal_retry_limit;
  db_options.retry_backoff_us = options.retry_backoff_us;
  db_options.clock = options.clock;
  db_options.trace = conn->metrics_trace_.get();
  db_options.store_backend = options.store_backend;
  db_options.checkpoint_wal_bytes = options.checkpoint_wal_bytes;
  VERSO_ASSIGN_OR_RETURN(conn->db_,
                         Database::Open(dir, *conn->engine_, db_options));
  conn->Finish();
  return conn;
}

Result<std::unique_ptr<Connection>> Connection::OpenInMemory(
    ConnectionOptions options) {
  std::unique_ptr<Connection> conn(new Connection(options));
  VERSO_ASSIGN_OR_RETURN(conn->db_, Database::OpenInMemory(*conn->engine_));
  conn->Finish();
  return conn;
}

std::unique_ptr<Session> Connection::OpenSession() {
  ConnMetrics::Get().sessions_opened.Add();
  return std::unique_ptr<Session>(new Session(this));
}

Status Connection::ImportText(std::string_view source) {
  ObjectBase base = db_->current();
  VERSO_RETURN_IF_ERROR(ParseObjectBaseInto(source, engine_->symbols(),
                                            engine_->versions(), base));
  return Import(base);
}

Status Connection::Import(const ObjectBase& base) {
  Status status = db_->ImportBase(base);
  // Even a kObserverFailed import committed; readers must re-pin.
  if (status.ok() || status.code() == StatusCode::kObserverFailed) {
    InvalidateSnapshot();
  }
  return status;
}

uint64_t Connection::epoch() const { return db_->commit_epoch(); }

std::vector<std::string> Connection::view_names() const {
  return catalog_->names();
}

Result<ViewStats> Connection::GetViewStats(std::string_view name) const {
  const MaterializedView* view = catalog_->Find(name);
  if (view == nullptr) {
    return Status::NotFound("view '" + std::string(name) +
                            "' is not registered");
  }
  return view->stats();
}

Status Connection::ViewHealth(std::string_view name) const {
  const MaterializedView* view = catalog_->Find(name);
  if (view == nullptr) {
    return Status::NotFound("view '" + std::string(name) +
                            "' is not registered");
  }
  return view->health();
}

void Connection::SetTrace(TraceSink* trace) {
  // The database and catalog keep tracing through the metrics bridge;
  // only the bridge's downstream changes.
  options_.trace = trace;
  metrics_trace_->set_next(trace);
}

void Connection::DumpMetrics(std::ostream& out) const {
  MetricsRegistry::Global().DumpJson(out);
}

const Status& Connection::health() const { return db_->health(); }

const StorageStats& Connection::storage_stats() const { return db_->stats(); }

Status Connection::Checkpoint() { return db_->Checkpoint(); }

size_t Connection::wal_records_since_checkpoint() const {
  return db_->wal_records_since_checkpoint();
}

bool Connection::recovered_from_torn_wal() const {
  return db_->recovered_from_torn_wal();
}

const Status& Connection::corrupt_tail_preservation() const {
  return db_->corrupt_tail_preservation();
}

std::shared_ptr<const internal::Snapshot> Connection::Pin() {
  uint64_t now = db_->commit_epoch();
  uint64_t ddl = catalog_->ddl_generation();
  // The cached snapshot is only current if BOTH the commit epoch and the
  // view-DDL generation match: CREATE VIEW / DROP VIEW between commits
  // change the view set without advancing the epoch, and a snapshot
  // keyed on the epoch alone could serve a dropped view (or hide a new
  // one) even if some DDL path forgot to call InvalidateSnapshot.
  if (cached_ != nullptr && cached_->epoch == now &&
      cached_->ddl_generation == ddl) {
    return cached_;
  }
  // Cache miss: a fresh snapshot is actually built (COW-cheap, but not
  // free) — the hit path above stays untimed and uncounted.
  ConnMetrics& metrics = ConnMetrics::Get();
  metrics.pins.Add();
  ScopedTimer pin_timer(MetricsRegistry::Global(), metrics.pin_us);
  auto snap = std::make_shared<internal::Snapshot>(db_->current());
  snap->epoch = now;
  snap->ddl_generation = ddl;
  for (const std::string& name : catalog_->names()) {
    const MaterializedView* view = catalog_->Find(name);
    if (!view->health().ok()) continue;  // poisoned: stale, do not serve
    snap->views.emplace(
        name,
        internal::Snapshot::ViewEntry{view->result(), view->DerivedMethods()});
  }
  cached_ = std::move(snap);
  return cached_;
}

void Connection::OnViewDelta(const MaterializedView& view,
                             const DeltaLog& view_delta, uint64_t epoch) {
  // Walk a snapshot of ids and re-resolve each: a callback may
  // unsubscribe (itself or others) without invalidating this delivery.
  std::vector<uint64_t> ids;
  for (const SubscriptionRec& sub : subscriptions_) {
    if (sub.view == view.name()) ids.push_back(sub.id);
  }
  if (ids.empty()) return;  // nobody listening: skip the delta copy
  ConnMetrics& metrics = ConnMetrics::Get();
  ScopedTimer fanout_timer(MetricsRegistry::Global(),
                           metrics.delivery_fanout_us);
  ViewDelta event;
  event.view = view.name();
  // The triggering member's own epoch, threaded from the commit: reading
  // db_->commit_epoch() at delivery time would mislabel a member's delta
  // with a later member's epoch if delivery ever happened after further
  // epoch bumps (and replay consumers key their streams on this tag).
  event.epoch = epoch;
  event.facts = view_delta;
  for (uint64_t id : ids) {
    ViewCallback callback;  // copied out: the callback may mutate the list
    for (const SubscriptionRec& sub : subscriptions_) {
      if (sub.id == id) {
        callback = sub.callback;
        break;
      }
    }
    if (callback) {
      callback(event);
      metrics.deliveries.Add();
      metrics.delivered_facts.Add(event.facts.size());
    }
  }
}

Result<ResultSet> Connection::ExecuteWrite(
    Session& session, Program& program,
    const std::function<bool(const Program&, const std::vector<uint32_t>&)>&
        admit) {
  EvalOptions eval = options_.eval;
  if (eval.admit_parallel == nullptr) eval.admit_parallel = admit;
  Result<RunOutcome> out = db_->Execute(program, eval, metrics_trace_.get());
  if (!out.ok()) {
    if (out.status().code() == StatusCode::kObserverFailed) {
      // The commit stands (see CommitObserver); only the observer work is
      // incomplete. Drop the session's pin so its next read sees its own
      // (durable) commit.
      InvalidateSnapshot();
      session.snap_.reset();
    }
    return out.status();
  }
  InvalidateSnapshot();
  session.snap_.reset();  // lazily re-pins at the next read
  auto outcome = std::make_shared<RunOutcome>(std::move(*out));
  DeltaLog rows = outcome->committed_delta;
  internal::SortRows(rows);
  ResultSet rs(ResultSet::Kind::kWrite, outcome->committed_epoch,
               std::move(rows), &engine_->symbols(), &engine_->versions());
  rs.outcome_ = std::move(outcome);
  return rs;
}

Result<std::vector<ResultSet>> Connection::ExecuteWriteBatch(
    Session& session, const std::vector<Program*>& programs,
    const std::vector<std::function<
        bool(const Program&, const std::vector<uint32_t>&)>>& admits) {
  EvalOptions eval = options_.eval;
  if (eval.admit_parallel == nullptr && admits.size() == programs.size()) {
    // One closure serves the whole batch: dispatch on program identity to
    // each member statement's cached prepare-time verdict.
    auto table = std::make_shared<std::vector<std::pair<
        const Program*,
        std::function<bool(const Program&, const std::vector<uint32_t>&)>>>>();
    for (size_t i = 0; i < programs.size(); ++i) {
      if (admits[i] != nullptr) table->emplace_back(programs[i], admits[i]);
    }
    if (!table->empty()) {
      eval.admit_parallel = [table](const Program& program,
                                    const std::vector<uint32_t>& rules) {
        for (const auto& entry : *table) {
          if (entry.first == &program) return entry.second(program, rules);
        }
        return false;
      };
    }
  }
  Result<std::vector<RunOutcome>> out =
      db_->ExecuteBatch(programs, eval, metrics_trace_.get());
  if (!out.ok()) {
    if (out.status().code() == StatusCode::kObserverFailed) {
      InvalidateSnapshot();
      session.snap_.reset();
    }
    return out.status();
  }
  InvalidateSnapshot();
  session.snap_.reset();  // lazily re-pins at the next read
  std::vector<ResultSet> results;
  results.reserve(out->size());
  for (RunOutcome& one : *out) {
    auto outcome = std::make_shared<RunOutcome>(std::move(one));
    DeltaLog rows = outcome->committed_delta;
    internal::SortRows(rows);
    // Each transaction of the group carries its OWN commit epoch — the
    // one its subscription deltas were tagged with.
    ResultSet rs(ResultSet::Kind::kWrite, outcome->committed_epoch,
                 std::move(rows), &engine_->symbols(), &engine_->versions());
    rs.outcome_ = std::move(outcome);
    results.push_back(std::move(rs));
  }
  return results;
}

Result<ResultSet> Connection::CreateView(Session& session,
                                         const std::string& name,
                                         const QueryProgram& program) {
  VERSO_RETURN_IF_ERROR(
      catalog_->Register(name, program, db_->current(), options_.analysis));
  // The epoch is unchanged but the view set is not: invalidate the shared
  // snapshot so this session (and new ones) read the view from now on.
  InvalidateSnapshot();
  session.snap_.reset();
  return ResultSet(ResultSet::Kind::kDdl, db_->commit_epoch(), DeltaLog(),
                   &engine_->symbols(), &engine_->versions());
}

Result<ResultSet> Connection::DropView(Session& session,
                                       const std::string& name) {
  VERSO_RETURN_IF_ERROR(catalog_->Drop(name));
  // Cancel the dropped view's subscriptions: a later CREATE VIEW reusing
  // the name is a NEW view, and silently re-binding old subscribers to
  // it would corrupt their replay streams.
  subscriptions_.erase(
      std::remove_if(subscriptions_.begin(), subscriptions_.end(),
                     [&name](const SubscriptionRec& sub) {
                       return sub.view == name;
                     }),
      subscriptions_.end());
  InvalidateSnapshot();
  session.snap_.reset();
  return ResultSet(ResultSet::Kind::kDdl, db_->commit_epoch(), DeltaLog(),
                   &engine_->symbols(), &engine_->versions());
}

uint64_t Connection::AddSubscription(std::string view, Session* owner,
                                     ViewCallback callback) {
  uint64_t id = next_subscription_++;
  subscriptions_.push_back(
      SubscriptionRec{id, std::move(view), owner, std::move(callback)});
  return id;
}

Status Connection::RemoveSubscription(Session* owner, uint64_t id) {
  for (auto it = subscriptions_.begin(); it != subscriptions_.end(); ++it) {
    if (it->id != id) continue;
    if (it->owner != owner) {
      return Status::InvalidArgument(
          "subscription belongs to another session");
    }
    subscriptions_.erase(it);
    return Status::Ok();
  }
  return Status::NotFound("no such subscription");
}

void Connection::RemoveSessionSubscriptions(Session* owner) {
  subscriptions_.erase(
      std::remove_if(subscriptions_.begin(), subscriptions_.end(),
                     [owner](const SubscriptionRec& sub) {
                       return sub.owner == owner;
                     }),
      subscriptions_.end());
}

}  // namespace verso
