#ifndef VERSO_API_API_H_
#define VERSO_API_API_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/analyzer.h"
#include "core/engine.h"
#include "obs/metrics.h"
#include "query/query.h"
#include "storage/database.h"
#include "util/numeric.h"
#include "views/catalog.h"

/// The verso client API — the one public surface of the library.
///
///     Connection  owns the engine, the persistent database, and the view
///                 catalog; all commits and DDL flow through it.
///     Session     a per-client handle with SNAPSHOT-ISOLATED reads: the
///                 session pins an epoch of the committed base and of
///                 every materialized view, so long-running readers see a
///                 consistent state while writers keep committing.
///     Statement   one prepared statement: update-programs, ad-hoc
///                 derived-method queries, CREATE VIEW / DROP VIEW /
///                 QUERY text commands — one grammar, parsed once,
///                 executable many times.
///     ResultSet   a uniform typed-row cursor over the facts a statement
///                 produced (committed delta for writes, derived facts
///                 for queries).
///
/// Typical use:
///
///     auto conn = *verso::Connection::Open("/data/db");
///     auto session = conn->OpenSession();
///     session->Execute("t: ins[ann].sal -> 2000.");
///     session->Execute("CREATE VIEW rich AS "
///                      "derive X.rich -> yes <- X.sal -> S, S > 1000.");
///     auto rs = *session->Execute("QUERY rich");
///     while (rs.Next()) std::cout << rs.RowToString() << "\n";
///
/// Threading: like the layers below, a Connection and all its sessions
/// belong to one thread (the usual embedded-store contract). Sessions and
/// statements must not outlive their connection.
namespace verso {

class Connection;
class MetricsTraceSink;
class Session;
class Statement;
class ResultSet;

/// Options fixed when a connection opens.
struct ConnectionOptions {
  /// Evaluation of update-programs (writes).
  EvalOptions eval;
  /// Evaluation of ad-hoc derived-method queries (reads).
  QueryOptions query;
  /// Static analysis run at Statement prepare time and on CREATE VIEW
  /// (src/analysis). Enabled by default; diagnostic-only unless a
  /// blocking severity fires (errors always block — the evaluator would
  /// reject those programs anyway, just later and with less position).
  AnalysisOptions analysis;
  /// Observes rule firings, commits, view maintenance, and storage
  /// faults (not owned; must outlive the connection).
  TraceSink* trace = nullptr;
  /// Filesystem backend every persisted byte goes through; nullptr means
  /// the real filesystem. Tests substitute a FaultInjectingEnv.
  Env* env = nullptr;
  /// Retry budget and backoff for transient WAL-append failures before
  /// the connection degrades to read-only (see DatabaseOptions).
  uint32_t wal_retry_limit = 3;
  uint32_t retry_backoff_us = 100;
  /// Monotonic clock the WAL retry backoff sleeps through; nullptr means
  /// Clock::Default() (see DatabaseOptions::clock).
  Clock* clock = nullptr;
  /// Checkpoint/recovery store backend for persistent connections
  /// (src/store): kMem rewrites one whole-base image per checkpoint,
  /// kPageLog appends O(delta) records and compacts itself. Reopen a
  /// directory with the backend that checkpointed it. In-memory
  /// connections ignore it.
  StoreBackend store_backend = StoreBackend::kMem;
  /// When > 0, a commit that leaves the WAL at or past this many bytes
  /// triggers an automatic Checkpoint(), bounding recovery replay (see
  /// DatabaseOptions::checkpoint_wal_bytes). 0 disables.
  size_t checkpoint_wal_bytes = 0;
};

/// One commit's change to one materialized view's result, delivered to
/// Session::Subscribe callbacks: the base transition plus every derived
/// fact the maintenance run added or removed, in installation order.
/// Replaying the `facts` of successive ViewDeltas on top of a pinned copy
/// of the view result reconstructs the live result exactly — the delta
/// stream a read replica would consume.
struct ViewDelta {
  std::string view;
  /// The commit epoch this delta belongs to (Database::commit_epoch()).
  uint64_t epoch = 0;
  DeltaLog facts;
};

using ViewCallback = std::function<void(const ViewDelta&)>;

namespace internal {

/// A pinned point-in-time image: the committed base and every healthy
/// view's result at one epoch. Shared (refcounted) between all sessions
/// pinned to the same epoch; released when the last session lets go.
/// Pinning is cheap: the base and every view result are copy-on-write
/// images (ObjectBase structural sharing), so a snapshot shares all
/// unchanged per-version state with the committed base — and with the
/// previous epoch's snapshot — instead of deep-copying every fact.
struct Snapshot {
  explicit Snapshot(ObjectBase b) : base(std::move(b)) {}

  uint64_t epoch = 0;
  /// View-DDL generation of the catalog at pin time: CREATE/DROP VIEW do
  /// not advance the commit epoch, so the cached snapshot must also be
  /// keyed on this to never serve a dropped view or miss a fresh one.
  uint64_t ddl_generation = 0;
  ObjectBase base;

  struct ViewEntry {
    ObjectBase result;
    std::vector<MethodId> methods;  // the view's derived methods, sorted
  };
  std::map<std::string, ViewEntry, std::less<>> views;
};

/// Canonical row order: by version, method, application, polarity.
void SortRows(DeltaLog& rows);

/// All facts of the given methods in `base`, as sorted added-rows.
DeltaLog CollectFacts(const ObjectBase& base,
                      const std::vector<MethodId>& methods);

}  // namespace internal

/// Uniform typed-row cursor over the facts a statement produced. Each row
/// is one ground fact `object.method@args -> result`; rows are sorted
/// canonically (by version, method, application), so equal states render
/// identically. For write statements the rows are the committed delta
/// (`added()` distinguishes insertions from removals); for queries and
/// QUERY <view> they are the derived facts.
///
/// A ResultSet owns its rows — it stays valid after later commits — but
/// renders names through its connection's symbol tables, so it must not
/// outlive the connection.
///
/// kMetrics results are the one non-fact shape: their rows are name/value
/// metric entries (metric_name()/metric_value()); the fact-typed
/// accessors must not be used on them.
class ResultSet {
 public:
  enum class Kind {
    kWrite,     // update-program: rows = committed delta
    kQuery,     // ad-hoc derived query: rows = derived facts
    kView,      // QUERY <view>: rows = the view's derived facts
    kDdl,       // CREATE VIEW / DROP VIEW: no rows
    kMetrics,   // QUERY METRICS: rows = name/value metric entries
    kAnalysis,  // QUERY ANALYZE <program>: rows = diagnostics
  };

  ResultSet(ResultSet&&) = default;
  ResultSet& operator=(ResultSet&&) = default;

  Kind kind() const { return kind_; }
  /// The commit epoch the statement executed at: for writes the epoch the
  /// commit produced, for reads the session's pinned epoch.
  uint64_t epoch() const { return epoch_; }

  size_t size() const {
    if (kind_ == Kind::kMetrics) return metrics_.size();
    if (kind_ == Kind::kAnalysis) return analysis_->diagnostics.size();
    return rows_.size();
  }
  bool empty() const { return size() == 0; }

  /// Advances to the next row; false when the cursor moves past the end.
  /// A fresh ResultSet starts before the first row.
  bool Next();
  /// Moves the cursor back before the first row.
  void Rewind();
  /// The current row; Next() must have returned true.
  const DeltaFact& row() const { return *current_; }
  /// All rows, in cursor order.
  const DeltaLog& rows() const { return rows_; }

  // -- typed accessors on the current row ------------------------------
  /// The version term, rendered: "ann", "mod(ann)", ...
  std::string object() const;
  std::string method() const;
  size_t arg_count() const { return row().app.args.size(); }
  Oid arg(size_t i) const { return row().app.args[i]; }
  std::string arg_text(size_t i) const;
  Oid result() const { return row().app.result; }
  bool result_is_number() const;
  /// The result as an exact rational; result_is_number() must hold.
  const Numeric& result_number() const;
  std::string result_text() const;
  /// False only for rows of a write's committed delta that were removals.
  bool added() const { return row().added; }
  /// The whole row in surface syntax: "vid.m@a1,..,ak -> r."
  std::string RowToString() const;

  // -- write-statement introspection (nullptr for other kinds) ---------
  const EvalStats* eval_stats() const;
  const Stratification* stratification() const;
  /// result(P): the full fixpoint with all intermediate versions, for
  /// hypothetical reasoning over the run's middle stages.
  const ObjectBase* update_result() const;

  // -- query-statement introspection (nullptr for other kinds) ---------
  const QueryStats* query_stats() const;

  // -- metrics rows (kMetrics only) ------------------------------------
  /// All metric entries, name-sorted — the same snapshot
  /// Connection::DumpMetrics would serialize at this point in time.
  const std::vector<MetricsRegistry::Entry>& metrics() const {
    return metrics_;
  }
  /// Name/value of the current metrics row; Next() must have returned
  /// true on a kMetrics result.
  const std::string& metric_name() const { return current_metric_->name; }
  int64_t metric_value() const { return current_metric_->value; }

  // -- analysis report (kAnalysis only) --------------------------------
  /// The full structured report (dependency graph, independence verdict,
  /// ToText()/ToJson() renderings); nullptr for other kinds. Rows of a
  /// kAnalysis result are the report's diagnostics, one per Next().
  const AnalysisReport* analysis() const { return analysis_.get(); }
  /// The current diagnostic row; Next() must have returned true on a
  /// kAnalysis result.
  const Diagnostic& diagnostic() const {
    return analysis_->diagnostics[next_ - 1];
  }

 private:
  friend class Connection;
  friend class Statement;

  ResultSet(Kind kind, uint64_t epoch, DeltaLog rows,
            const SymbolTable* symbols, const VersionTable* versions)
      : kind_(kind),
        epoch_(epoch),
        rows_(std::move(rows)),
        symbols_(symbols),
        versions_(versions) {}

  /// kMetrics: metric entries live beside the (empty) fact rows instead
  /// of being interned as facts — metric values change every commit, and
  /// interning them would grow the symbol table without bound.
  ResultSet(uint64_t epoch, std::vector<MetricsRegistry::Entry> entries,
            const SymbolTable* symbols, const VersionTable* versions)
      : kind_(Kind::kMetrics),
        epoch_(epoch),
        metrics_(std::move(entries)),
        symbols_(symbols),
        versions_(versions) {}

  /// kAnalysis: the rows are the report's diagnostics; like metrics rows
  /// they are not facts and never touch the symbol table.
  ResultSet(uint64_t epoch, std::shared_ptr<const AnalysisReport> report,
            const SymbolTable* symbols, const VersionTable* versions)
      : kind_(Kind::kAnalysis),
        epoch_(epoch),
        symbols_(symbols),
        versions_(versions),
        analysis_(std::move(report)) {}

  Kind kind_;
  uint64_t epoch_;
  DeltaLog rows_;
  std::vector<MetricsRegistry::Entry> metrics_;  // kMetrics
  size_t next_ = 0;
  const DeltaFact* current_ = nullptr;
  const MetricsRegistry::Entry* current_metric_ = nullptr;
  const SymbolTable* symbols_;
  const VersionTable* versions_;
  std::shared_ptr<RunOutcome> outcome_;    // kWrite
  std::shared_ptr<QueryStats> qstats_;     // kQuery
  std::shared_ptr<const AnalysisReport> analysis_;  // kAnalysis
};

/// One prepared statement, bound to the session that prepared it. The
/// text is parsed once at Prepare time; Execute() can run it repeatedly
/// (each run re-reads the session's current snapshot or commits a new
/// transaction). The unified grammar:
///
///     <update-program>                   e.g. "t: mod[E].sal -> (S,S2) <- ..."
///     [label:] derive <rules>            ad-hoc derived-method query
///     CREATE VIEW <name> AS <rules>      register a materialized view
///     DROP VIEW <name>                   drop it
///     QUERY <name>                       read a view from the snapshot
///     QUERY METRICS                      snapshot the metrics registry
///     QUERY ANALYZE <program>            static analysis report (update
///                                        or derive program; never runs it)
///
/// Keywords are case-insensitive; `%` starts a to-end-of-line comment.
/// METRICS and ANALYZE are reserved: QUERY resolves them (in any case) to
/// the metrics snapshot / the analyzer, never to views of those names.
///
/// Preparing a kUpdate, kQuery, or kCreateView statement also runs the
/// static analyzer (ConnectionOptions::analysis): blocking diagnostics
/// fail the Prepare with the same status code evaluation would have
/// produced, and the full report stays readable via analysis().
class Statement {
 public:
  enum class Kind {
    kUpdate,
    kQuery,
    kCreateView,
    kDropView,
    kQueryView,
    kMetrics,
    kAnalyze,
  };

  Statement(Statement&&) = default;
  Statement& operator=(Statement&&) = default;

  Kind kind() const { return kind_; }
  const std::string& text() const { return text_; }
  /// The view a kCreateView/kDropView/kQueryView statement names.
  const std::string& view_name() const { return view_name_; }
  /// The parsed update-program of a kUpdate statement (pairs with a
  /// write ResultSet's stratification() for StratificationToString).
  const Program& program() const { return program_; }
  /// The prepare-time analysis report of a kUpdate / kQuery / kCreateView
  /// statement, or nullptr (analysis disabled, or other kinds).
  const AnalysisReport* analysis() const { return analysis_.get(); }

  /// Runs the statement. Reads (kQuery, kQueryView) evaluate against the
  /// session's pinned snapshot; writes (kUpdate) commit against the
  /// latest state and re-pin the session; DDL applies to the catalog.
  Result<ResultSet> Execute();

 private:
  friend class Session;
  friend class Connection;

  Statement(Session* session, Kind kind, std::string text)
      : session_(session), kind_(kind), text_(std::move(text)) {}

  Session* session_;
  Kind kind_;
  std::string text_;
  std::string view_name_;  // view statements
  std::string body_text_;  // kAnalyze: the program after the keyword
  Program program_;        // kUpdate
  QueryProgram query_;     // kQuery, kCreateView
  std::shared_ptr<const AnalysisReport> analysis_;  // prepare-time report
  /// kUpdate, prepared with analysis on: the cached per-stratum parallel
  /// admission verdict (analysis::MakeParallelAdmission over analysis_).
  /// Wired into EvalOptions::admit_parallel at Execute time, so repeated
  /// executions reuse the prepare-time analysis instead of re-deriving
  /// conflict verdicts per run.
  std::function<bool(const Program&, const std::vector<uint32_t>&)>
      admit_parallel_;
};

/// A per-client handle. Opening a session pins the current commit epoch:
/// the committed base and every healthy view's result are retained (via a
/// refcounted snapshot shared by all sessions at that epoch) and every
/// read — QUERY <view>, ad-hoc derive queries, base()/ViewSnapshot() —
/// answers from the pinned state, unaffected by later commits.
///
/// Writes are not isolated: an update-program executed through a session
/// commits against the latest state (first-committer-wins, as in the
/// layers below), and on success the session re-pins to its own commit,
/// so a session always reads its own writes. Refresh() re-pins to the
/// latest committed state on demand.
class Session {
 public:
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// The pinned commit epoch this session reads at.
  uint64_t epoch() const;

  /// Re-pins to the latest committed state (also picks up view DDL).
  void Refresh();

  /// Parses `text` into a prepared statement (see Statement for the
  /// grammar). The statement must not outlive this session.
  Result<Statement> Prepare(std::string_view text);

  /// Prepare + Execute in one step.
  Result<ResultSet> Execute(std::string_view text);

  /// Group commit: executes the given kUpdate statements as one
  /// durability write (one WAL record for the whole batch),
  /// all-or-nothing on evaluation failure. Re-pins on success.
  Result<std::vector<ResultSet>> ExecuteBatch(
      const std::vector<Statement*>& statements);

  /// The pinned committed base.
  const ObjectBase& base() const;

  /// The pinned result of a registered view (base + derived facts), or
  /// NotFound if the view did not exist (or was poisoned) at pin time.
  /// The pointer stays valid until the session re-pins or closes.
  Result<const ObjectBase*> ViewSnapshot(std::string_view view) const;

  /// Subscribes to a view's per-commit delta stream: from the next commit
  /// on, `callback` receives one ViewDelta per committed transaction (the
  /// first brick of read-replica fan-out). Delivery is synchronous within
  /// the committing call, in subscription order; callbacks must not
  /// commit or open sessions themselves.
  ///
  /// To build a replay seed (the ViewDelta recipe), pin and subscribe at
  /// the same epoch: call Refresh(), then Subscribe, then copy
  /// ViewSnapshot(view) — the stream continues exactly where the seed
  /// stops. A seed pinned at an OLDER epoch than the subscription start
  /// is missing the commits in between.
  ///
  /// Returns a token for Unsubscribe; closing the session cancels its
  /// subscriptions, and so does dropping the subscribed view (a later
  /// CREATE VIEW reusing the name is a new view — subscribe again).
  /// Subscribing to a view that is not registered fails with NotFound.
  Result<uint64_t> Subscribe(std::string_view view, ViewCallback callback);
  Status Unsubscribe(uint64_t subscription);

 private:
  friend class Connection;
  friend class Statement;

  explicit Session(Connection* conn);

  /// The pinned snapshot. Opening a session pins eagerly (the "pins the
  /// current epoch" contract); after one of this session's OWN writes the
  /// slot is cleared and re-pinned lazily at the next read, so a session
  /// committing in a loop does not re-copy a snapshot per commit.
  const internal::Snapshot& snap() const;

  Connection* conn_;
  mutable std::shared_ptr<const internal::Snapshot> snap_;
};

/// The unified client entry point: owns the engine (symbol/version
/// universe), the database (durability + commit stream), and the view
/// catalog (incremental maintenance), wired together. All client work
/// flows through sessions; see the file comment for the model.
class Connection : public ViewDeltaSink {
 public:
  /// Opens (creating if needed) a persistent connection on `dir`,
  /// recovering committed state. Views are not persistent yet: re-create
  /// them after opening (initial evaluation runs once per registration).
  static Result<std::unique_ptr<Connection>> Open(
      const std::string& dir, ConnectionOptions options = ConnectionOptions());

  /// An ephemeral connection: same semantics, nothing touches disk.
  static Result<std::unique_ptr<Connection>> OpenInMemory(
      ConnectionOptions options = ConnectionOptions());

  ~Connection() override;
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Opens a session pinned to the current committed epoch. The session
  /// must not outlive the connection.
  std::unique_ptr<Session> OpenSession();

  /// Parses `source` (.vob ground-fact syntax) and commits it as one
  /// transaction. The usual initial-load path.
  Status ImportText(std::string_view source);
  /// Commits `base` (replacing the committed base wholesale) as one
  /// transaction.
  Status Import(const ObjectBase& base);

  /// Number of transactions committed since open.
  uint64_t epoch() const;

  /// Registered view names, sorted.
  std::vector<std::string> view_names() const;
  /// Maintenance counters of one view, or NotFound.
  Result<ViewStats> GetViewStats(std::string_view name) const;
  /// Ok while the view is live; the first maintenance error after it
  /// poisoned (drop and re-create to recover); NotFound if unregistered.
  Status ViewHealth(std::string_view name) const;

  /// Statically analyzes `program_text` (an update-program, or a derived-
  /// method program starting with `derive`) against the CURRENT committed
  /// base's schema, without executing anything: safety, stratifiability
  /// with cycle paths, same-stratum update conflicts, dead rules, and the
  /// rule dependency graph with a per-stratum independence verdict. The
  /// kAnalysis result carries the report (ResultSet::analysis() — text
  /// via ToText(), stable JSON via ToJson()); its rows are the
  /// diagnostics. Parse failures fail the call; analysis findings never
  /// do (errors are rows, like any diagnostic). The machine-readable twin
  /// of `QUERY ANALYZE <program>`.
  Result<ResultSet> AnalyzeProgram(std::string_view program_text);

  /// Writes the current state of the process-wide metrics registry
  /// (MetricsRegistry::Global()) as a stable JSON document: name-sorted
  /// flat keys under "metrics", integer values, byte-identical for equal
  /// snapshots. The machine-readable twin of `QUERY METRICS` — a QUERY
  /// METRICS result and a DumpMetrics call with no events in between
  /// serialize the identical snapshot. Works while degraded (it is a
  /// read).
  void DumpMetrics(std::ostream& out) const;

  /// Ok while the connection accepts writes; after a durability failure
  /// on the commit path, the Status that caused degraded (read-only)
  /// mode. While degraded, every write statement returns kReadOnly but
  /// reads — pinned sessions, QUERY <view>, subscriptions already
  /// delivered — keep serving the last committed state. Sticky for the
  /// handle's lifetime; reopen the connection to recover.
  const Status& health() const;
  /// Storage-fault counters (io_failures / retries / degraded_entered).
  const StorageStats& storage_stats() const;

  /// Folds the WAL into a fresh snapshot (no-op for in-memory).
  Status Checkpoint();
  size_t wal_records_since_checkpoint() const;
  /// True if recovery at open found a torn/corrupt WAL tail and dropped
  /// it (the dropped bytes are kept in `wal.log.corrupt` for forensics).
  bool recovered_from_torn_wal() const;
  /// Ok unless the forensic copy of a dropped WAL tail is incomplete
  /// (side-file write failure or growth cap); recovery itself succeeded.
  const Status& corrupt_tail_preservation() const;

  /// Symbol/version tables, for rendering results (pretty.h).
  const SymbolTable& symbols() const { return engine_->symbols(); }
  const VersionTable& versions() const { return engine_->versions(); }

  /// Wires a trace sink after open — handy because a StreamTrace is built
  /// over the connection's own tables. Applies to subsequent statement
  /// executions and view registrations (not owned; nullptr to unwire).
  /// The sink sees the raw event stream: the connection's always-on
  /// metrics bridge (MetricsTraceSink) sits in front and forwards every
  /// event unchanged.
  void SetTrace(TraceSink* trace);

  /// Internal escape hatches for code not yet migrated to the facade and
  /// for tests; everything a client needs is on Connection/Session.
  Engine& engine() { return *engine_; }
  Database& database() { return *db_; }
  ViewCatalog& catalog() { return *catalog_; }

 private:
  friend class Session;
  friend class Statement;

  explicit Connection(ConnectionOptions options);

  /// Wires catalog + delta sink once db_ is open.
  void Finish();

  /// ViewDeltaSink: fans a view's per-commit delta out to subscriptions.
  /// `epoch` is the triggering transaction's own commit epoch (within an
  /// ExecuteBatch group, the member's epoch — not the batch's last).
  void OnViewDelta(const MaterializedView& view, const DeltaLog& view_delta,
                   uint64_t epoch) override;

  /// The shared snapshot of the current epoch, built on first demand
  /// after each commit (all sessions pinned between two commits share
  /// one copy).
  std::shared_ptr<const internal::Snapshot> Pin();
  void InvalidateSnapshot() { cached_.reset(); }

  /// `admit` is the statement's cached parallel-admission verdict (may
  /// be null); a policy installed globally via ConnectionOptions::eval
  /// takes precedence.
  Result<ResultSet> ExecuteWrite(
      Session& session, Program& program,
      const std::function<bool(const Program&, const std::vector<uint32_t>&)>&
          admit = nullptr);
  Result<std::vector<ResultSet>> ExecuteWriteBatch(
      Session& session, const std::vector<Program*>& programs,
      const std::vector<std::function<
          bool(const Program&, const std::vector<uint32_t>&)>>& admits = {});
  Result<ResultSet> CreateView(Session& session, const std::string& name,
                               const QueryProgram& program);
  Result<ResultSet> DropView(Session& session, const std::string& name);

  uint64_t AddSubscription(std::string view, Session* owner,
                           ViewCallback callback);
  Status RemoveSubscription(Session* owner, uint64_t id);
  void RemoveSessionSubscriptions(Session* owner);

  ConnectionOptions options_;
  std::unique_ptr<Engine> engine_;
  /// The always-on bridge from TraceSink events into the global metrics
  /// registry; every layer below (database, catalog, evaluation) traces
  /// through it, and it forwards to the client sink (options_.trace /
  /// SetTrace) unchanged.
  std::unique_ptr<MetricsTraceSink> metrics_trace_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<ViewCatalog> catalog_;
  std::shared_ptr<const internal::Snapshot> cached_;

  struct SubscriptionRec {
    uint64_t id;
    std::string view;
    Session* owner;
    ViewCallback callback;
  };
  std::vector<SubscriptionRec> subscriptions_;
  uint64_t next_subscription_ = 1;
};

}  // namespace verso

#endif  // VERSO_API_API_H_
