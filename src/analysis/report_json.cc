#include <ostream>
#include <sstream>

#include "analysis/analyzer.h"

namespace verso {

namespace {

/// Minimal JSON string escaping (quotes, backslash, control chars) —
/// metric names and rule labels are ASCII identifiers, diagnostics may
/// quote program text.
void WriteJsonString(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      case '\r':
        out << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void WritePairList(std::ostream& out,
                   const std::vector<std::pair<uint32_t, uint32_t>>& pairs) {
  out << "[";
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (i > 0) out << ",";
    out << "[" << pairs[i].first << "," << pairs[i].second << "]";
  }
  out << "]";
}

const char* ProgramKindName(AnalysisReport::ProgramKind kind) {
  return kind == AnalysisReport::ProgramKind::kUpdate ? "update" : "derive";
}

}  // namespace

size_t AnalysisReport::CountSeverity(Severity severity) const {
  size_t n = 0;
  for (const Diagnostic& diag : diagnostics) {
    if (diag.severity == severity) ++n;
  }
  return n;
}

Status AnalysisReport::FirstBlocking(const AnalysisOptions& options) const {
  for (const Diagnostic& diag : diagnostics) {
    if (diag.severity == Severity::kError ||
        (options.warnings_block && diag.severity == Severity::kWarning)) {
      return diag.ToStatus();
    }
  }
  return Status::Ok();
}

std::string AnalysisReport::ToText() const {
  std::ostringstream out;
  out << "analysis: " << ProgramKindName(program_kind) << " program, "
      << rule_count << (rule_count == 1 ? " rule" : " rules") << ", ";
  if (stratifiable) {
    out << strata.size() << (strata.size() == 1 ? " stratum" : " strata");
  } else {
    out << "NOT stratifiable";
  }
  out << "\n";
  out << "diagnostics: " << errors() << " error(s), " << warnings()
      << " warning(s), " << notes() << " note(s)\n";
  for (const Diagnostic& diag : diagnostics) {
    out << "  " << diag.ToString() << "\n";
  }
  for (size_t s = 0; s < strata.size(); ++s) {
    const StratumReport& stratum = strata[s];
    out << "stratum " << s << ":";
    for (uint32_t rule : stratum.rules) {
      out << " " << rule_labels[rule];
    }
    out << " -- "
        << (stratum.independent ? "independent"
                                : "NOT independent");
    if (!stratum.overlap_pairs.empty()) {
      out << ", " << stratum.overlap_pairs.size() << " overlap pair(s)";
    }
    if (!stratum.conflict_pairs.empty()) {
      out << ", " << stratum.conflict_pairs.size() << " conflict pair(s)";
    }
    out << "\n";
  }
  out << "dependency edges: " << edges.size() << "\n";
  return out.str();
}

void AnalysisReport::WriteJson(std::ostream& out) const {
  size_t independent_strata = 0;
  for (const StratumReport& stratum : strata) {
    if (stratum.independent) ++independent_strata;
  }
  out << "{\"verso_analysis_version\":1,";
  out << "\"program\":{\"kind\":\"" << ProgramKindName(program_kind)
      << "\",\"rules\":" << rule_count
      << ",\"stratifiable\":" << (stratifiable ? "true" : "false")
      << ",\"strata\":" << strata.size() << "},";
  out << "\"summary\":{\"errors\":" << errors()
      << ",\"warnings\":" << warnings() << ",\"notes\":" << notes()
      << ",\"independent_strata\":" << independent_strata << "},";
  out << "\"diagnostics\":[";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& diag = diagnostics[i];
    if (i > 0) out << ",";
    out << "{\"severity\":\"" << SeverityName(diag.severity)
        << "\",\"check\":";
    WriteJsonString(out, diag.check);
    out << ",\"rule\":" << diag.rule << ",\"rule_label\":";
    WriteJsonString(out, diag.rule_label);
    out << ",\"line\":" << diag.line << ",\"literal\":" << diag.literal
        << ",\"message\":";
    WriteJsonString(out, diag.message);
    out << "}";
  }
  out << "],";
  out << "\"rules\":[";
  for (size_t r = 0; r < rule_count; ++r) {
    if (r > 0) out << ",";
    out << "{\"index\":" << r << ",\"label\":";
    WriteJsonString(out, rule_labels[r]);
    out << ",\"line\":" << rule_lines[r] << ",\"stratum\":";
    if (r < stratum_of_rule.size()) {
      out << stratum_of_rule[r];
    } else {
      out << -1;
    }
    out << "}";
  }
  out << "],";
  out << "\"dependency_graph\":{\"edges\":[";
  for (size_t i = 0; i < edges.size(); ++i) {
    if (i > 0) out << ",";
    out << "{\"from\":" << edges[i].from << ",\"to\":" << edges[i].to
        << ",\"kind\":\"" << (edges[i].strict ? "strict" : "weak") << "\"}";
  }
  out << "]},";
  out << "\"strata\":[";
  for (size_t s = 0; s < strata.size(); ++s) {
    const StratumReport& stratum = strata[s];
    if (s > 0) out << ",";
    out << "{\"index\":" << s << ",\"rules\":[";
    for (size_t i = 0; i < stratum.rules.size(); ++i) {
      if (i > 0) out << ",";
      out << stratum.rules[i];
    }
    out << "],\"independent\":" << (stratum.independent ? "true" : "false")
        << ",\"overlaps\":";
    WritePairList(out, stratum.overlap_pairs);
    out << ",\"conflicts\":";
    WritePairList(out, stratum.conflict_pairs);
    out << "}";
  }
  out << "]}";
  out << "\n";
}

std::string AnalysisReport::ToJson() const {
  std::ostringstream out;
  WriteJson(out);
  return out.str();
}

}  // namespace verso
