#ifndef VERSO_ANALYSIS_ANALYZER_H_
#define VERSO_ANALYSIS_ANALYZER_H_

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/diagnostic.h"
#include "core/program.h"
#include "core/symbol_table.h"
#include "query/query.h"

/// Static rule-program analysis (the prepare-time diagnostics pass).
///
/// The paper's update semantics makes program meaning sensitive to rule
/// interaction: ins/del/mod heads on overlapping (version, method)
/// targets can leave the fixpoint order-dependent — exactly the
/// determinism concern the VLDB '92 stratification conditions exist for.
/// Today a bad program surfaces at runtime (or worse, silently). This
/// pass runs over the PARSED program, before any evaluation, and reports
/// structured diagnostics plus a rule dependency graph with a per-stratum
/// independence verdict — the "provably disjoint write sets" input the
/// ROADMAP's parallel stratum evaluation needs.
///
/// The analysis is diagnostic-only and behavior-preserving: it never
/// mutates the program it inspects and never changes evaluation results
/// (asserted differentially in tests/analysis). Severity policy is the
/// caller's: errors name programs the evaluator would reject anyway
/// (earlier, and with rule-level position), warnings and notes always
/// leave the program runnable.
namespace verso {

/// Severity policy for the analysis the API layer runs at Statement
/// prepare time and on CREATE VIEW.
struct AnalysisOptions {
  /// Run the pass at prepare/CREATE VIEW. Disabling skips diagnostics
  /// only — unsafe or non-stratifiable programs still fail at execution,
  /// just without positions (the pre-analyzer behavior).
  bool enabled = true;
  /// Treat warnings as blocking: prepare and CREATE VIEW fail on any
  /// warning (errors always block). Default off — warnings never change
  /// what runs.
  bool warnings_block = false;
};

/// Optional schema context: with the committed base's method set, the
/// dead-rule check can also flag body reads of methods that no base fact
/// and no rule head can ever produce. Pure static analysis (prepare
/// time) runs without it.
struct AnalysisContext {
  /// Sorted method ids present in the base schema; empty = unknown.
  std::vector<MethodId> base_methods;
  bool has_base = false;
};

class ObjectBase;

/// The schema context of an object base: every method some fact of
/// `base` carries, sorted.
AnalysisContext ContextFromBase(const ObjectBase& base);

/// The full result of one analysis run: diagnostics plus the dependency
/// graph / independence report, renderable as human text (ToText) and as
/// a stable JSON document (WriteJson, the machine-readable twin — same
/// contract as Connection::DumpMetrics).
struct AnalysisReport {
  enum class ProgramKind : uint8_t { kUpdate, kDerive };

  ProgramKind program_kind = ProgramKind::kUpdate;
  size_t rule_count = 0;
  /// Per-rule display label and 1-based source line (0 = programmatic),
  /// indexed by rule, so diagnostics stay renderable without the program.
  std::vector<std::string> rule_labels;
  std::vector<int> rule_lines;

  /// All findings, ordered by (rule, check) discovery order.
  std::vector<Diagnostic> diagnostics;

  /// Rule dependency graph: edge (from, to) means `to` depends on `from`
  /// (stratum(from) + w <= stratum(to)); strict edges carry w = 1. For
  /// derived programs the edges come from the method dependency graph.
  struct Edge {
    uint32_t from = 0;
    uint32_t to = 0;
    bool strict = false;
  };
  std::vector<Edge> edges;

  /// False when a negation-through-recursion cycle was found; `strata`
  /// is empty then (no evaluation order exists to report).
  bool stratifiable = false;
  /// rule index -> stratum, parallel to the program; empty when not
  /// stratifiable.
  std::vector<uint32_t> stratum_of_rule;

  /// Per-stratum independence verdict: `independent` holds iff every
  /// rule pair of the stratum has provably disjoint write sets — the
  /// precondition for fanning the stratum across a worker pool.
  struct StratumReport {
    std::vector<uint32_t> rules;  // program order
    bool independent = true;
    /// Pairs (lower index first) that may write the same facts, but
    /// confluently — they break independence without being conflicts.
    std::vector<std::pair<uint32_t, uint32_t>> overlap_pairs;
    /// Pairs flagged by the update-conflict check (also diagnosed).
    std::vector<std::pair<uint32_t, uint32_t>> conflict_pairs;
  };
  std::vector<StratumReport> strata;

  size_t errors() const { return CountSeverity(Severity::kError); }
  size_t warnings() const { return CountSeverity(Severity::kWarning); }
  size_t notes() const { return CountSeverity(Severity::kNote); }
  bool ok() const { return errors() == 0; }

  /// The first blocking diagnostic under the given policy as a Status
  /// (errors always block; warnings when `warnings_block`), or Ok.
  Status FirstBlocking(const AnalysisOptions& options) const;

  /// Human-readable multi-line rendering: summary, diagnostics, and the
  /// per-stratum independence table.
  std::string ToText() const;

  /// The stable JSON document (see README "Static analysis &
  /// diagnostics" for the schema): fixed key order, sorted lists,
  /// byte-identical for equal reports.
  void WriteJson(std::ostream& out) const;
  std::string ToJson() const;

 private:
  size_t CountSeverity(Severity severity) const;
};

/// Analyzes an update-program. Checks: safety/range-restriction per rule,
/// stratifiability with the offending cycle path, same-stratum update
/// conflicts over (version, method, kind) write sets, dead rules, and
/// the dependency/independence report. Never fails: malformed programs
/// yield error diagnostics, not a Status.
AnalysisReport AnalyzeUpdateProgram(const Program& program,
                                    const SymbolTable& symbols,
                                    const AnalysisContext& context = {});

/// Analyzes a derived-method (view / ad-hoc query) program: safety per
/// rule, negation-through-recursion with the method cycle path, dead
/// rules, and the method-level dependency graph (strata = method SCCs).
AnalysisReport AnalyzeDerivedProgram(const QueryProgram& program,
                                     const SymbolTable& symbols,
                                     const AnalysisContext& context = {});

/// Builds the evaluator's parallel-admission policy
/// (EvalOptions::admit_parallel) from an update-program's analysis
/// report: a stratum may fan out across the worker pool iff the
/// update-conflict check proved its rules free of conflicting write sets
/// (stratum conflict_pairs empty). Confluent overlaps ARE admitted — the
/// parallel path merges worker outputs in deterministic serial order, so
/// confluence suffices for bit-identical results. Verdicts are computed
/// once here, at Statement prepare time; the returned closure only looks
/// them up by the stratum's rule set. A null or non-stratifiable report,
/// and rule sets the report does not know, admit nothing.
std::function<bool(const Program&, const std::vector<uint32_t>&)>
MakeParallelAdmission(std::shared_ptr<const AnalysisReport> report);

}  // namespace verso

#endif  // VERSO_ANALYSIS_ANALYZER_H_
