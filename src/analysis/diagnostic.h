#ifndef VERSO_ANALYSIS_DIAGNOSTIC_H_
#define VERSO_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace verso {

/// Severity of one static-analysis finding. Errors make the program
/// unrunnable (the evaluator would reject it anyway — the analyzer just
/// reports it earlier and with position); warnings flag programs that run
/// but whose meaning is suspect (statically detectable non-confluence,
/// dead rules); notes are informational refinements.
enum class Severity : uint8_t {
  kError = 0,
  kWarning = 1,
  kNote = 2,
};

/// "error" / "warning" / "note".
std::string_view SeverityName(Severity severity);

/// Stable identifiers of the analyzer's checks, used as the `check` field
/// of diagnostics and as keys in the JSON report.
///
///   unsafe-rule      safety / range-restriction violation (Section 2.1)
///   negation-cycle   negation (or another strict constraint) through
///                    recursion: no stratification exists (Section 4)
///   update-conflict  two same-stratum rules update a potentially
///                    unifiable version with clashing kinds — the
///                    statically detectable non-confluence the paper's
///                    determinism conditions are built around
///   dead-rule        rule can never fire (contradictory body literals,
///                    a ground built-in that is false, or a body update
///                    literal no rule head can ever make true)
///
/// New checks must keep these strings stable: clients pin on them.
inline constexpr const char kCheckUnsafeRule[] = "unsafe-rule";
inline constexpr const char kCheckNegationCycle[] = "negation-cycle";
inline constexpr const char kCheckUpdateConflict[] = "update-conflict";
inline constexpr const char kCheckDeadRule[] = "dead-rule";

/// One structured prepare-time diagnostic: every failure or finding the
/// statement layer reports — parse-adjacent analysis errors included —
/// carries the same (rule, line, literal) position triple, so clients see
/// one granularity no matter which pass produced the message.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string check;       // one of the kCheck* identifiers
  int rule = -1;           // rule index in program order; -1 = whole program
  std::string rule_label;  // Rule::DisplayName() at diagnosis time
  int line = 0;            // 1-based source line; 0 = built programmatically
  int literal = -1;        // body literal index; -1 = head / whole rule
  std::string message;

  /// "error [update-conflict] rule 2 ('rule3') line 5: <message>" — the
  /// uniform rendering both the text report and ToStatus() use.
  std::string ToString() const;

  /// The diagnostic as a Status whose code matches what the evaluator
  /// would have returned for the same defect (kUnsafeRule for
  /// unsafe-rule, kNotStratifiable for negation-cycle, kInvalidArgument
  /// otherwise), with the ToString() rendering as message.
  Status ToStatus() const;
};

}  // namespace verso

#endif  // VERSO_ANALYSIS_DIAGNOSTIC_H_
