#ifndef VERSO_ANALYSIS_RW_SETS_H_
#define VERSO_ANALYSIS_RW_SETS_H_

#include "core/rule.h"

namespace verso {

/// The statically known write footprint of one update-rule head: firing
/// the rule materializes version kind(V) and asserts (ins), retracts
/// (del), or rewrites (mod) applications of one method — or of every
/// method, for a `del[V].*` head.
struct WriteSet {
  UpdateKind kind = UpdateKind::kInsert;
  VidTerm version;     // V — the version term being updated
  bool all_methods = false;  // del[V].* head
  MethodId method;     // meaningful when !all_methods
};

WriteSet WriteSetOf(const Rule& rule);

/// Pairwise classification of two rules' write sets, the basis of both
/// the update-conflict check and the per-stratum independence verdict:
///
///   kDisjoint  provably disjoint written facts — the pair can be
///              evaluated by different workers with no coordination;
///   kOverlap   may write the same facts, but confluently (duplicate
///              ins, repeated del): order cannot change the fixpoint;
///   kConflict  statically detectable non-confluence — an ins head
///              against a del/mod head (or two mod heads, or del vs mod)
///              on a potentially unifiable version with overlapping
///              methods, i.e. the same application may be asserted and
///              retracted/rewritten within one stratum.
enum class WriteOverlap : uint8_t {
  kDisjoint = 0,
  kOverlap = 1,
  kConflict = 2,
};

/// Classifies the write sets of two rules assumed to share a stratum.
/// Rules are standardized apart: variables of `a` and `b` are unrelated.
WriteOverlap ClassifyWritePair(const Rule& a, const Rule& b);

/// True iff the two literals have the same shape: same literal kind,
/// method, update kind, functor chain, and constant positions agree —
/// with every variable treated as matching every variable. Used for the
/// complementary-guard refinement across two rules (shape comparison is
/// the right notion there: the rules quantify their variables apart).
bool SameLiteralShape(const Literal& a, const Literal& b);

/// True iff the two literals of ONE rule are identical up to polarity:
/// like SameLiteralShape but variables must be the very same VarId. A
/// positive and a negative identical literal in one body is a
/// contradiction — the rule can never fire.
bool IdenticalLiteral(const Literal& a, const Literal& b);

/// True iff some positive version-/update-literal of `a` occurs negated
/// in `b` (or vice versa) with the same shape: the classic complementary
/// guard (`E.pos -> mgr` against `not E.pos -> mgr`) that makes two
/// overlapping heads fire on disjoint bindings. Downgrades a conflict
/// diagnostic to a note — the analyzer cannot prove the guard covers all
/// bindings, but the program is clearly written to be deterministic.
bool GuardedByComplement(const Rule& a, const Rule& b);

}  // namespace verso

#endif  // VERSO_ANALYSIS_RW_SETS_H_
