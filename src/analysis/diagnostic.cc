#include "analysis/diagnostic.h"

namespace verso {

std::string_view SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  std::string out(SeverityName(severity));
  out += " [" + check + "]";
  if (rule >= 0) {
    out += " rule " + std::to_string(rule);
    if (!rule_label.empty()) out += " ('" + rule_label + "')";
    if (line > 0) out += " line " + std::to_string(line);
    if (literal >= 0) out += " literal " + std::to_string(literal);
  }
  out += ": " + message;
  return out;
}

Status Diagnostic::ToStatus() const {
  if (check == kCheckUnsafeRule) return Status::UnsafeRule(ToString());
  if (check == kCheckNegationCycle) {
    return Status::NotStratifiable(ToString());
  }
  return Status::InvalidArgument(ToString());
}

}  // namespace verso
