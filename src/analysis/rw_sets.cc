#include "analysis/rw_sets.h"

#include "core/unify.h"

namespace verso {

namespace {

/// Shape match of object-id-terms: constants must be the same OID;
/// variables match variables. With `identical`, variables must be the
/// same VarId (single-rule comparison).
bool ObjTermMatches(const ObjTerm& a, const ObjTerm& b, bool identical) {
  if (a.is_var != b.is_var) return false;
  if (a.is_var) return !identical || a.var == b.var;
  return a.oid == b.oid;
}

bool VidTermMatches(const VidTerm& a, const VidTerm& b, bool identical) {
  return a.ops == b.ops && ObjTermMatches(a.base, b.base, identical);
}

bool AppMatches(const AppPattern& a, const AppPattern& b, bool identical) {
  if (a.method != b.method || a.args.size() != b.args.size()) return false;
  for (size_t i = 0; i < a.args.size(); ++i) {
    if (!ObjTermMatches(a.args[i], b.args[i], identical)) return false;
  }
  return ObjTermMatches(a.result, b.result, identical);
}

bool LiteralMatches(const Literal& a, const Literal& b, bool identical) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case Literal::Kind::kVersion:
      return VidTermMatches(a.version.version, b.version.version, identical) &&
             AppMatches(a.version.app, b.version.app, identical);
    case Literal::Kind::kUpdate:
      if (a.update.kind != b.update.kind ||
          a.update.delete_all != b.update.delete_all) {
        return false;
      }
      if (!VidTermMatches(a.update.version, b.update.version, identical)) {
        return false;
      }
      if (a.update.delete_all) return true;
      if (!AppMatches(a.update.app, b.update.app, identical)) return false;
      return a.update.kind != UpdateKind::kModify ||
             ObjTermMatches(a.update.new_result, b.update.new_result,
                            identical);
    case Literal::Kind::kBuiltin:
      // Expression nodes live in per-rule pools; comparing them across
      // rules is not meaningful for the guard heuristic, and a built-in
      // carries no fact shape to contradict.
      return false;
  }
  return false;
}

}  // namespace

WriteSet WriteSetOf(const Rule& rule) {
  WriteSet ws;
  ws.kind = rule.head.kind;
  ws.version = rule.head.version;
  ws.all_methods = rule.head.delete_all;
  if (!ws.all_methods) ws.method = rule.head.app.method;
  return ws;
}

WriteOverlap ClassifyWritePair(const Rule& a, const Rule& b) {
  WriteSet wa = WriteSetOf(a);
  WriteSet wb = WriteSetOf(b);
  // Non-unifiable updated versions can never materialize the same
  // successor state: fully independent.
  if (!UnifyVidTerms(wa.version, wb.version)) return WriteOverlap::kDisjoint;
  const bool methods_overlap =
      wa.all_methods || wb.all_methods || wa.method == wb.method;
  if (wa.kind != wb.kind) {
    // Competing update kinds on one version fork its successor state
    // (ins(V) against del(V)/mod(V) siblings); when the methods also
    // overlap, the same application is asserted by one head and
    // retracted or rewritten by the other — order-dependent meaning.
    return methods_overlap ? WriteOverlap::kConflict : WriteOverlap::kOverlap;
  }
  if (!methods_overlap) return WriteOverlap::kDisjoint;
  // Same kind, same method, unifiable version: duplicate ins and repeated
  // del commute (set semantics); two mod heads race to rewrite the same
  // application.
  return wa.kind == UpdateKind::kModify ? WriteOverlap::kConflict
                                        : WriteOverlap::kOverlap;
}

bool SameLiteralShape(const Literal& a, const Literal& b) {
  return LiteralMatches(a, b, /*identical=*/false);
}

bool IdenticalLiteral(const Literal& a, const Literal& b) {
  return LiteralMatches(a, b, /*identical=*/true);
}

namespace {

bool HasComplement(const Rule& positive_side, const Rule& negative_side) {
  for (const Literal& pos : positive_side.body) {
    if (pos.negated || pos.kind == Literal::Kind::kBuiltin) continue;
    for (const Literal& neg : negative_side.body) {
      if (!neg.negated) continue;
      if (SameLiteralShape(pos, neg)) return true;
    }
  }
  return false;
}

}  // namespace

bool GuardedByComplement(const Rule& a, const Rule& b) {
  return HasComplement(a, b) || HasComplement(b, a);
}

}  // namespace verso
