#include "analysis/analyzer.h"

#include <algorithm>
#include <deque>
#include <set>
#include <tuple>
#include <unordered_map>

#include "analysis/rw_sets.h"
#include "core/object_base.h"
#include "core/pretty.h"
#include "core/stratify.h"
#include "core/unify.h"
#include "obs/metrics.h"

namespace verso {

namespace {

/// Analysis-layer handles into the global registry, bound once.
struct AnalysisMetrics {
  Counter& programs;
  Counter& rules;
  Counter& diagnostics;
  Counter& errors;
  Counter& warnings;
  Counter& notes;
  Counter& conflict_pairs;
  Histogram& analyze_us;

  static AnalysisMetrics& Get() {
    static AnalysisMetrics* metrics =
        new AnalysisMetrics(MetricsRegistry::Global());  // never dies
    return *metrics;
  }

  explicit AnalysisMetrics(MetricsRegistry& registry)
      : programs(registry.GetCounter("analysis.programs")),
        rules(registry.GetCounter("analysis.rules")),
        diagnostics(registry.GetCounter("analysis.diagnostics")),
        errors(registry.GetCounter("analysis.errors")),
        warnings(registry.GetCounter("analysis.warnings")),
        notes(registry.GetCounter("analysis.notes")),
        conflict_pairs(registry.GetCounter("analysis.conflict_pairs")),
        analyze_us(registry.GetHistogram("analysis.us")) {}
};

/// Collects the report skeleton (labels/lines) and appends diagnostics
/// with their position triple filled in uniformly.
class ReportBuilder {
 public:
  ReportBuilder(AnalysisReport& report, const std::vector<Rule>& rules)
      : report_(report), rules_(rules) {
    report_.rule_count = rules.size();
    report_.rule_labels.reserve(rules.size());
    report_.rule_lines.reserve(rules.size());
    for (const Rule& rule : rules) {
      report_.rule_labels.push_back(rule.DisplayName());
      report_.rule_lines.push_back(rule.source_line);
    }
  }

  void Add(Severity severity, const char* check, int rule, int literal,
           std::string message) {
    Diagnostic diag;
    diag.severity = severity;
    diag.check = check;
    diag.rule = rule;
    if (rule >= 0) {
      diag.rule_label = report_.rule_labels[static_cast<size_t>(rule)];
      diag.line = report_.rule_lines[static_cast<size_t>(rule)];
    }
    diag.literal = literal;
    diag.message = std::move(message);
    report_.diagnostics.push_back(std::move(diag));
  }

  const std::vector<Rule>& rules() const { return rules_; }

 private:
  AnalysisReport& report_;
  const std::vector<Rule>& rules_;
};

/// AnalyzeRule prefixes its messages with the rule's display name; the
/// diagnostic carries that as a structured field, so strip the prefix
/// rather than render it twice.
std::string StripRulePrefix(const std::string& message,
                            const std::string& label) {
  const std::string prefix = label + ": ";
  if (message.rfind(prefix, 0) == 0) return message.substr(prefix.size());
  return message;
}

/// Safety / range-restriction: AnalyzeRule on a copy of each rule (the
/// analyzer must not mutate the program it inspects), every failure one
/// error diagnostic — all rules are checked, not just the first bad one.
void CheckSafety(ReportBuilder& builder, const SymbolTable& symbols) {
  for (size_t r = 0; r < builder.rules().size(); ++r) {
    Rule copy = builder.rules()[r];
    Status status = AnalyzeRule(copy, symbols);
    if (status.ok()) continue;
    builder.Add(Severity::kError, kCheckUnsafeRule, static_cast<int>(r), -1,
                StripRulePrefix(status.message(), copy.DisplayName()));
  }
}

bool IsConstExpr(const ExprPool& pool, ExprId id) {
  return pool.at(id).kind == Expr::Kind::kConst;
}

/// Dead-rule conditions local to one body: a literal occurring both
/// positively and negatively (identical variables), or a variable-free
/// built-in comparison that is already false.
void CheckDeadBodies(ReportBuilder& builder, const SymbolTable& symbols) {
  for (size_t r = 0; r < builder.rules().size(); ++r) {
    const Rule& rule = builder.rules()[r];
    bool dead = false;
    for (size_t i = 0; i < rule.body.size() && !dead; ++i) {
      const Literal& lit = rule.body[i];
      if (lit.kind == Literal::Kind::kBuiltin) {
        if (!IsConstExpr(rule.exprs, lit.builtin.lhs) ||
            !IsConstExpr(rule.exprs, lit.builtin.rhs)) {
          continue;
        }
        bool truth = EvalCmp(lit.builtin.op, rule.exprs.at(lit.builtin.lhs).constant,
                             rule.exprs.at(lit.builtin.rhs).constant, symbols);
        if (lit.negated) truth = !truth;
        if (!truth) {
          builder.Add(Severity::kWarning, kCheckDeadRule, static_cast<int>(r),
                      static_cast<int>(i),
                      "built-in '" + LiteralToString(lit, rule, symbols) +
                          "' compares constants and is always false — the "
                          "rule can never fire");
          dead = true;
        }
        continue;
      }
      if (lit.negated) continue;
      for (size_t j = 0; j < rule.body.size(); ++j) {
        const Literal& other = rule.body[j];
        if (!other.negated || other.kind == Literal::Kind::kBuiltin) continue;
        if (!IdenticalLiteral(lit, other)) continue;
        builder.Add(Severity::kWarning, kCheckDeadRule, static_cast<int>(r),
                    static_cast<int>(j),
                    "body requires both '" +
                        LiteralToString(lit, rule, symbols) + "' and its "
                        "negation — the rule can never fire");
        dead = true;
        break;
      }
    }
  }
}

/// Tiny iterative Tarjan over a generic adjacency list (method-level
/// dependency graphs of derived programs; rule graphs reuse
/// core/stratify's own).
struct SccResult {
  std::vector<int> component;
  int component_count = 0;
};

SccResult RunScc(const std::vector<std::vector<uint32_t>>& adj) {
  const size_t n = adj.size();
  SccResult out;
  out.component.assign(n, -1);
  std::vector<int> index(n, -1);
  std::vector<int> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<uint32_t> stack;
  int next_index = 0;
  struct Frame {
    uint32_t node;
    size_t child;
  };
  for (uint32_t start = 0; start < n; ++start) {
    if (index[start] != -1) continue;
    std::vector<Frame> frames{{start, 0}};
    index[start] = lowlink[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = true;
    while (!frames.empty()) {
      Frame& frame = frames.back();
      if (frame.child < adj[frame.node].size()) {
        uint32_t next = adj[frame.node][frame.child++];
        if (index[next] == -1) {
          index[next] = lowlink[next] = next_index++;
          stack.push_back(next);
          on_stack[next] = true;
          frames.push_back({next, 0});
        } else if (on_stack[next]) {
          lowlink[frame.node] = std::min(lowlink[frame.node], index[next]);
        }
      } else {
        if (lowlink[frame.node] == index[frame.node]) {
          while (true) {
            uint32_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            out.component[w] = out.component_count;
            if (w == frame.node) break;
          }
          ++out.component_count;
        }
        uint32_t done = frame.node;
        frames.pop_back();
        if (!frames.empty()) {
          lowlink[frames.back().node] =
              std::min(lowlink[frames.back().node], lowlink[done]);
        }
      }
    }
  }
  return out;
}

/// Shortest path `to -> ... -> from` within one SCC, as node indices; the
/// caller prepends `from` to render the full cycle.
std::vector<uint32_t> SccPath(const std::vector<std::vector<uint32_t>>& adj,
                              const std::vector<int>& component,
                              uint32_t from, uint32_t to) {
  if (from == to) return {to};
  std::vector<int> pred(adj.size(), -1);
  std::deque<uint32_t> queue{to};
  pred[to] = static_cast<int>(to);
  bool found = false;
  while (!queue.empty() && !found) {
    uint32_t node = queue.front();
    queue.pop_front();
    for (uint32_t next : adj[node]) {
      if (component[next] != component[from] || pred[next] != -1) continue;
      pred[next] = static_cast<int>(node);
      if (next == from) {
        found = true;
        break;
      }
      queue.push_back(next);
    }
  }
  if (!found) return {};
  std::vector<uint32_t> back;
  for (uint32_t at = from;; at = static_cast<uint32_t>(pred[at])) {
    back.push_back(at);
    if (at == to) break;
  }
  return std::vector<uint32_t>(back.rbegin(), back.rend());
}

/// Sorted-unique insert helper for the pair lists.
void AddPair(std::vector<std::pair<uint32_t, uint32_t>>& pairs, uint32_t a,
             uint32_t b) {
  pairs.emplace_back(std::min(a, b), std::max(a, b));
}

void FinishMetrics(const AnalysisReport& report) {
  AnalysisMetrics& metrics = AnalysisMetrics::Get();
  metrics.programs.Add();
  metrics.rules.Add(report.rule_count);
  metrics.diagnostics.Add(report.diagnostics.size());
  metrics.errors.Add(report.errors());
  metrics.warnings.Add(report.warnings());
  metrics.notes.Add(report.notes());
  size_t conflicts = 0;
  for (const AnalysisReport::StratumReport& s : report.strata) {
    conflicts += s.conflict_pairs.size();
  }
  metrics.conflict_pairs.Add(conflicts);
}

}  // namespace

AnalysisContext ContextFromBase(const ObjectBase& base) {
  AnalysisContext context;
  std::set<uint32_t> methods;
  for (const auto& [vid, state] : base.versions()) {
    (void)vid;
    for (const auto& [method, apps] : state->methods()) {
      (void)apps;
      methods.insert(method.value);
    }
  }
  context.base_methods.reserve(methods.size());
  for (uint32_t m : methods) context.base_methods.push_back(MethodId(m));
  context.has_base = true;
  return context;
}

AnalysisReport AnalyzeUpdateProgram(const Program& program,
                                    const SymbolTable& symbols,
                                    const AnalysisContext& context) {
  ScopedTimer timer(MetricsRegistry::Global(),
                    AnalysisMetrics::Get().analyze_us);
  AnalysisReport report;
  report.program_kind = AnalysisReport::ProgramKind::kUpdate;
  ReportBuilder builder(report, program.rules);

  CheckSafety(builder, symbols);
  CheckDeadBodies(builder, symbols);

  // Producibility: a positive body update-literal `op[V].m` can only be
  // made true by a head performing that very transition; base facts never
  // satisfy it. With the base schema known, positive version reads and
  // del/mod head methods are checked against what base facts or ins heads
  // can supply.
  const MethodId exists = symbols.exists_method();
  std::set<uint32_t> ins_methods;
  for (const Rule& rule : program.rules) {
    if (!rule.head.delete_all && rule.head.kind == UpdateKind::kInsert) {
      ins_methods.insert(rule.head.app.method.value);
    }
  }
  auto readable = [&](MethodId m) {
    if (m == exists || ins_methods.count(m.value) != 0) return true;
    return std::binary_search(context.base_methods.begin(),
                              context.base_methods.end(), m);
  };
  for (size_t r = 0; r < program.rules.size(); ++r) {
    const Rule& rule = program.rules[r];
    for (size_t i = 0; i < rule.body.size(); ++i) {
      const Literal& lit = rule.body[i];
      if (lit.negated) continue;
      if (lit.kind == Literal::Kind::kUpdate) {
        bool producible = false;
        for (const Rule& producer : program.rules) {
          if (producer.head.kind != lit.update.kind) continue;
          if (!producer.head.delete_all &&
              producer.head.app.method != lit.update.app.method) {
            continue;
          }
          if (UnifyVidTerms(producer.head.TargetTerm(),
                            lit.update.TargetTerm())) {
            producible = true;
            break;
          }
        }
        if (!producible) {
          builder.Add(
              Severity::kWarning, kCheckDeadRule, static_cast<int>(r),
              static_cast<int>(i),
              "no rule head performs the update '" +
                  LiteralToString(lit, rule, symbols) +
                  "' this literal tests — the rule can never fire");
        }
      } else if (lit.kind == Literal::Kind::kVersion && context.has_base &&
                 !readable(lit.version.app.method)) {
        builder.Add(Severity::kWarning, kCheckDeadRule, static_cast<int>(r),
                    static_cast<int>(i),
                    "method '" +
                        std::string(symbols.MethodName(lit.version.app.method)) +
                        "' occurs in no base fact and no ins head — the "
                        "literal is unsatisfiable");
      }
    }
    if (context.has_base && !rule.head.delete_all &&
        rule.head.kind != UpdateKind::kInsert &&
        !readable(rule.head.app.method)) {
      builder.Add(Severity::kWarning, kCheckDeadRule, static_cast<int>(r), -1,
                  "head " +
                      std::string(UpdateKindName(rule.head.kind)) +
                      "-updates method '" +
                      std::string(symbols.MethodName(rule.head.app.method)) +
                      "', which occurs in no base fact and no ins head — "
                      "the update can never apply");
    }
  }

  // Dependency graph, stratifiability, and the per-stratum report.
  RuleGraph graph = BuildRuleGraph(program);
  for (const auto& [from, to] : graph.strict_edges) {
    report.edges.push_back({from, to, /*strict=*/true});
  }
  for (const auto& [from, to] : graph.weak_edges) {
    report.edges.push_back({from, to, /*strict=*/false});
  }
  std::sort(report.edges.begin(), report.edges.end(),
            [](const AnalysisReport::Edge& a, const AnalysisReport::Edge& b) {
              if (a.from != b.from) return a.from < b.from;
              if (a.to != b.to) return a.to < b.to;
              return a.strict > b.strict;
            });

  // One negation-cycle diagnostic per offending SCC, naming the full
  // cycle path — not today's bare two-rule failure.
  std::set<int> reported_components;
  for (const auto& [from, to] : graph.strict_edges) {
    if (!graph.SameComponent(from, to)) continue;
    if (!reported_components.insert(graph.component[from]).second) continue;
    std::string path;
    for (uint32_t rule : FindRuleCycle(graph, from, to)) {
      if (!path.empty()) path += " -> ";
      path += report.rule_labels[rule];
    }
    builder.Add(Severity::kError, kCheckNegationCycle, static_cast<int>(from),
                -1,
                "no stratification satisfies conditions (a)-(d): strict "
                "dependency cycle " +
                    path);
  }
  report.stratifiable = reported_components.empty();

  if (report.stratifiable && !program.rules.empty()) {
    Result<Stratification> strat = Stratify(program);
    if (strat.ok()) {
      report.stratum_of_rule = strat->stratum_of_rule;
      report.strata.resize(strat->strata.size());
      for (size_t s = 0; s < strat->strata.size(); ++s) {
        AnalysisReport::StratumReport& stratum = report.strata[s];
        stratum.rules = strat->strata[s];
        // Pairwise write-set classification inside the stratum: conflicts
        // are diagnosed (warning, or note when guarded by a complementary
        // literal), overlaps only break the independence verdict.
        for (size_t i = 0; i < stratum.rules.size(); ++i) {
          for (size_t j = i + 1; j < stratum.rules.size(); ++j) {
            uint32_t ra = stratum.rules[i];
            uint32_t rb = stratum.rules[j];
            const Rule& a = program.rules[ra];
            const Rule& b = program.rules[rb];
            switch (ClassifyWritePair(a, b)) {
              case WriteOverlap::kDisjoint:
                break;
              case WriteOverlap::kOverlap:
                stratum.independent = false;
                AddPair(stratum.overlap_pairs, ra, rb);
                break;
              case WriteOverlap::kConflict: {
                stratum.independent = false;
                AddPair(stratum.conflict_pairs, ra, rb);
                bool guarded = GuardedByComplement(a, b);
                std::string msg =
                    "rules '" + report.rule_labels[ra] + "' and '" +
                    report.rule_labels[rb] + "' share stratum " +
                    std::to_string(s) + " and both update version '" +
                    VidTermToString(a.head.version, a, symbols) + "' (" +
                    std::string(UpdateKindName(a.head.kind)) + " vs " +
                    std::string(UpdateKindName(b.head.kind)) +
                    " on overlapping methods) — the fixpoint may depend "
                    "on rule application order";
                if (guarded) {
                  msg += "; the bodies carry complementary guards, so the "
                         "overlap is likely intentional";
                }
                builder.Add(guarded ? Severity::kNote : Severity::kWarning,
                            kCheckUpdateConflict, static_cast<int>(ra), -1,
                            std::move(msg));
                break;
              }
            }
          }
        }
      }
    }
  }

  FinishMetrics(report);
  return report;
}

AnalysisReport AnalyzeDerivedProgram(const QueryProgram& program,
                                     const SymbolTable& symbols,
                                     const AnalysisContext& context) {
  ScopedTimer timer(MetricsRegistry::Global(),
                    AnalysisMetrics::Get().analyze_us);
  AnalysisReport report;
  report.program_kind = AnalysisReport::ProgramKind::kDerive;
  ReportBuilder builder(report, program.rules);

  CheckSafety(builder, symbols);
  CheckDeadBodies(builder, symbols);

  // Readability: a derived body method must be defined by some rule head,
  // exist in the base schema (when known), or be the system `exists`.
  const MethodId exists = symbols.exists_method();
  auto derived = [&](MethodId m) {
    return std::find(program.derived_methods.begin(),
                     program.derived_methods.end(),
                     m) != program.derived_methods.end();
  };
  if (context.has_base) {
    for (size_t r = 0; r < program.rules.size(); ++r) {
      const Rule& rule = program.rules[r];
      for (size_t i = 0; i < rule.body.size(); ++i) {
        const Literal& lit = rule.body[i];
        if (lit.negated || lit.kind != Literal::Kind::kVersion) continue;
        MethodId m = lit.version.app.method;
        if (m == exists || derived(m) ||
            std::binary_search(context.base_methods.begin(),
                               context.base_methods.end(), m)) {
          continue;
        }
        builder.Add(Severity::kWarning, kCheckDeadRule, static_cast<int>(r),
                    static_cast<int>(i),
                    "method '" + std::string(symbols.MethodName(m)) +
                        "' is neither derived by any rule nor present in "
                        "the base — the literal is unsatisfiable");
      }
    }
  }

  // Method-level dependency graph; strata are its SCCs (exactly the
  // grouping AnalyzeQueryProgram evaluates in).
  std::unordered_map<uint32_t, uint32_t> node_of_method;
  for (MethodId m : program.derived_methods) {
    node_of_method.emplace(m.value,
                           static_cast<uint32_t>(node_of_method.size()));
  }
  std::vector<MethodId> method_of_node(node_of_method.size());
  for (MethodId m : program.derived_methods) {
    method_of_node[node_of_method.at(m.value)] = m;
  }
  std::vector<std::vector<uint32_t>> method_adj(node_of_method.size());
  struct MethodEdge {
    uint32_t head_node;
    uint32_t body_node;
    bool negated;
  };
  std::vector<MethodEdge> method_edges;
  for (size_t r = 0; r < program.rules.size(); ++r) {
    const Rule& rule = program.rules[r];
    auto head_it = node_of_method.find(rule.head.app.method.value);
    if (head_it == node_of_method.end()) continue;  // desynchronized input
    for (const Literal& lit : rule.body) {
      if (lit.kind != Literal::Kind::kVersion) continue;
      auto it = node_of_method.find(lit.version.app.method.value);
      if (it == node_of_method.end()) continue;  // base method
      method_adj[head_it->second].push_back(it->second);
      method_edges.push_back({head_it->second, it->second, lit.negated});
    }
  }
  SccResult scc = RunScc(method_adj);

  // Rule-level edges for the report: rule `to` depends on every rule
  // whose head defines a method `to` reads; negation makes it strict.
  std::set<std::tuple<uint32_t, uint32_t, bool>> rule_edges;
  for (size_t to = 0; to < program.rules.size(); ++to) {
    for (const Literal& lit : program.rules[to].body) {
      if (lit.kind != Literal::Kind::kVersion) continue;
      for (size_t from = 0; from < program.rules.size(); ++from) {
        if (program.rules[from].head.app.method != lit.version.app.method) {
          continue;
        }
        rule_edges.emplace(static_cast<uint32_t>(from),
                           static_cast<uint32_t>(to), lit.negated);
      }
    }
  }
  for (const auto& [from, to, strict] : rule_edges) {
    // A strict edge between the same rules supersedes the weak one.
    if (!strict && rule_edges.count({from, to, true}) != 0) continue;
    report.edges.push_back({from, to, strict});
  }

  // Negation inside a method SCC: recursion through negation, reported
  // with the actual method cycle.
  std::set<int> reported_components;
  for (const MethodEdge& edge : method_edges) {
    if (!edge.negated ||
        scc.component[edge.head_node] != scc.component[edge.body_node]) {
      continue;
    }
    if (!reported_components.insert(scc.component[edge.head_node]).second) {
      continue;
    }
    std::vector<uint32_t> path =
        SccPath(method_adj, scc.component, edge.head_node, edge.body_node);
    std::string rendered(
        symbols.MethodName(method_of_node[edge.head_node]));
    for (uint32_t node : path) {
      rendered += " -> ";
      rendered += symbols.MethodName(method_of_node[node]);
    }
    // Attribute the cycle to the first rule whose head defines the
    // negating method, for a rule-level position.
    int at_rule = -1;
    for (size_t r = 0; r < program.rules.size(); ++r) {
      auto it = node_of_method.find(program.rules[r].head.app.method.value);
      if (it != node_of_method.end() && it->second == edge.head_node) {
        at_rule = static_cast<int>(r);
        break;
      }
    }
    builder.Add(Severity::kError, kCheckNegationCycle, at_rule, -1,
                "derived methods are recursive through negation: " +
                    rendered);
  }
  report.stratifiable = reported_components.empty();

  if (report.stratifiable && !program.rules.empty()) {
    report.strata.resize(static_cast<size_t>(scc.component_count));
    report.stratum_of_rule.resize(program.rules.size(), 0);
    for (size_t r = 0; r < program.rules.size(); ++r) {
      auto it = node_of_method.find(program.rules[r].head.app.method.value);
      uint32_t stratum =
          it == node_of_method.end()
              ? 0
              : static_cast<uint32_t>(scc.component[it->second]);
      report.stratum_of_rule[r] = stratum;
      report.strata[stratum].rules.push_back(static_cast<uint32_t>(r));
    }
    // Derive heads only insert — pairs never conflict, but two rules
    // defining the same method may derive the same fact: overlap.
    for (AnalysisReport::StratumReport& stratum : report.strata) {
      for (size_t i = 0; i < stratum.rules.size(); ++i) {
        for (size_t j = i + 1; j < stratum.rules.size(); ++j) {
          uint32_t ra = stratum.rules[i];
          uint32_t rb = stratum.rules[j];
          if (program.rules[ra].head.app.method ==
              program.rules[rb].head.app.method) {
            stratum.independent = false;
            AddPair(stratum.overlap_pairs, ra, rb);
          }
        }
      }
    }
  }

  FinishMetrics(report);
  return report;
}

std::function<bool(const Program&, const std::vector<uint32_t>&)>
MakeParallelAdmission(std::shared_ptr<const AnalysisReport> report) {
  if (report == nullptr || !report->stratifiable ||
      report->program_kind != AnalysisReport::ProgramKind::kUpdate) {
    return [](const Program&, const std::vector<uint32_t>&) { return false; };
  }
  // Precomputed verdicts, keyed by the stratum's sorted rule set. The
  // rule count double-checks the closure is asked about the program it
  // was built for.
  struct Verdicts {
    size_t rule_count;
    std::vector<std::pair<std::vector<uint32_t>, bool>> by_rules;
  };
  auto verdicts = std::make_shared<Verdicts>();
  verdicts->rule_count = report->rule_count;
  for (const AnalysisReport::StratumReport& stratum : report->strata) {
    std::vector<uint32_t> key = stratum.rules;
    std::sort(key.begin(), key.end());
    verdicts->by_rules.emplace_back(std::move(key),
                                    stratum.conflict_pairs.empty());
  }
  return [verdicts](const Program& program,
                    const std::vector<uint32_t>& rules) {
    if (program.rules.size() != verdicts->rule_count) return false;
    std::vector<uint32_t> key = rules;
    std::sort(key.begin(), key.end());
    for (const auto& entry : verdicts->by_rules) {
      if (entry.first == key) return entry.second;
    }
    return false;
  };
}

}  // namespace verso
