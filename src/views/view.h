#ifndef VERSO_VIEWS_VIEW_H_
#define VERSO_VIEWS_VIEW_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/analyzer.h"
#include "core/delta.h"
#include "core/object_base.h"
#include "core/trace.h"
#include "query/query.h"
#include "util/hash.h"
#include "util/result.h"

namespace verso {

/// A ground view fact (the key of the support-count store).
struct ViewFactKey {
  Vid vid;
  MethodId method;
  GroundApp app;

  friend bool operator==(const ViewFactKey& a, const ViewFactKey& b) {
    return a.vid == b.vid && a.method == b.method && a.app == b.app;
  }
};

struct ViewFactKeyHash {
  size_t operator()(const ViewFactKey& k) const {
    size_t seed = k.vid.value;
    HashCombine(seed, k.method.value);
    for (Oid arg : k.app.args) HashCombine(seed, arg.value);
    HashCombine(seed, k.app.result.value);
    return seed;
  }
};

/// Observability counters of one materialized view (cumulative).
struct ViewStats {
  uint64_t full_evaluations = 0;   // initial materializations
  uint64_t maintenance_runs = 0;   // commits absorbed incrementally
  uint64_t delta_facts_seen = 0;   // base fact changes consumed
  uint64_t facts_added = 0;        // view facts installed by maintenance
  uint64_t facts_removed = 0;      // view facts retracted by maintenance
  uint64_t support_increments = 0;  // counting strata: derivations gained
  uint64_t support_decrements = 0;  // counting strata: derivations lost
  uint64_t overdeleted = 0;        // DRed strata: facts provisionally deleted
  uint64_t rederived = 0;          // DRed strata: facts with alternative proofs
  uint64_t seed_probes = 0;        // delta-seeded partial matches launched
  uint64_t rederive_probes = 0;    // goal-directed head probes launched
  uint64_t index_probes = 0;       // bound-result lookups through the
                                   // result index (DRed Phase A/B probes
                                   // bind heads, so these dominate there)
  uint64_t index_hits = 0;         // probes enumerating >= 1 fact
  uint64_t indexed_scan_avoided_facts = 0;  // full-scan visits skipped
};

/// A named materialized view: a derived-method program evaluated once in
/// full over a committed base and thereafter maintained incrementally from
/// each commit's fact-level DeltaLog.
///
/// Maintenance is planned from the program's SCC stratification
/// (AnalyzeQueryProgram):
///   * non-recursive strata use counting — every view fact carries its
///     number of distinct derivations, kept exact per delta fact (a
///     reverse sweep over the commit's delta reproduces, probe for probe,
///     the textbook one-fact-at-a-time counting algorithm, including
///     matches gained/lost through *negated* body literals);
///   * recursive strata use delete-and-rederive (DRed) — overdelete every
///     fact with a derivation through a deleted fact, rederive the ones
///     with surviving alternative proofs via goal-directed head probes,
///     then propagate insertions semi-naively.
/// Each stratum emits its own fact-level delta, which feeds the strata
/// above it, so a commit ripples through the view bottom-up.
class MaterializedView {
 public:
  /// Fully evaluates `program` over `base` (which must not store facts of
  /// any derived method) and returns the maintained view. When `analysis`
  /// is enabled (the default), the static analyzer runs over the program
  /// against `base`'s schema first: blocking diagnostics fail the
  /// creation with rule-level positions (errors always block; warnings
  /// when analysis.warnings_block), and the report stays readable on the
  /// registered view via analysis().
  /// `num_threads` > 1 fans the initial materialization's recursive
  /// fixpoints and DRed maintenance probes (Phase A overdeletion waves,
  /// Phase B rederivation) across the shared worker pool; results and
  /// emitted deltas are bit-identical to the serial path (0 or 1).
  static Result<std::unique_ptr<MaterializedView>> Create(
      std::string name, QueryProgram program, const ObjectBase& base,
      SymbolTable& symbols, VersionTable& versions,
      TraceSink* trace = nullptr,
      const AnalysisOptions& analysis = AnalysisOptions(),
      int num_threads = 0);

  const std::string& name() const { return name_; }
  /// The maintained result: base plus all derived facts. Identical to a
  /// from-scratch EvaluateQueries over the current committed base.
  const ObjectBase& result() const { return working_; }
  const ViewStats& stats() const { return stats_; }
  const QueryStratification& stratification() const { return stratification_; }

  /// True iff `method` is defined by this view's rules.
  bool DefinesMethod(MethodId method) const {
    return derived_methods_.count(method.value) != 0;
  }

  /// The methods defined by this view's rule heads, sorted.
  std::vector<MethodId> DerivedMethods() const;

  /// Absorbs one committed transaction's fact-level delta. The delta must
  /// describe the transition from the base state the view currently
  /// reflects; facts of derived methods are rejected (a base transaction
  /// must not write view methods). A failure poisons the view: the error
  /// is remembered, every further delta is refused with it, and result()
  /// is stale from that commit on — drop and re-register to recover.
  ///
  /// When `view_delta` is given, the *result-level* fact changes of this
  /// maintenance run — the base transition plus every derived fact the
  /// strata added or removed, in installation order — are written to it.
  /// Replaying these deltas commit by commit on top of a copy of result()
  /// taken before the commits reconstructs result() exactly; this is the
  /// stream view subscriptions deliver.
  Status ApplyBaseDelta(const DeltaLog& delta, DeltaLog* view_delta = nullptr);

  /// Ok while the view is live; the first maintenance error otherwise.
  const Status& health() const { return health_; }

  /// The creation-time static analysis report, or nullptr when analysis
  /// was disabled at Create time.
  const AnalysisReport* analysis() const { return analysis_.get(); }

 private:
  /// A maintenance trigger: a changed fact probed through either the
  /// positive or the negated body occurrences of its method.
  struct Trigger {
    DeltaFact fact;
    bool through_negation;
  };

  MaterializedView(std::string name, QueryProgram program,
                   const ObjectBase& base, SymbolTable& symbols,
                   VersionTable& versions, TraceSink* trace, int num_threads)
      : name_(std::move(name)),
        program_(std::move(program)),
        symbols_(symbols),
        versions_(versions),
        trace_(trace),
        num_threads_(num_threads),
        working_(base) {}

  Status Materialize();
  Status MaintainAll(const DeltaLog& delta, DeltaLog* view_delta);

  /// Stratum maintenance. `input` is the commit delta plus every lower
  /// stratum's emitted delta; each appends its own fact changes to `out`.
  Status MaintainCounting(const QueryStratum& stratum, const DeltaLog& input,
                          DeltaLog& out);
  Status MaintainDRed(uint32_t stratum_index, const QueryStratum& stratum,
                      const DeltaLog& input, DeltaLog& out);

  /// Methods read by the stratum's rule bodies (positive or negated).
  std::unordered_set<uint32_t> ReadMethods(const QueryStratum& stratum) const;

  /// Derivations gained/lost when `fact` changes, counted through the
  /// occurrences selected by `trigger.through_negation`: each match's head
  /// fact is appended to `heads` (deduplicated across occurrences so one
  /// derivation is counted exactly once). Enumerates against the current
  /// working base; callers stage presence/absence of the fact around the
  /// call.
  Status ProbeTrigger(const QueryStratum& stratum, const Trigger& trigger,
                      std::vector<ViewFactKey>& heads);

  /// True iff `fact` (a view fact of this stratum) has a derivation in the
  /// current working base: goal-directed probe unifying the fact with each
  /// defining rule's head.
  Result<bool> HasDerivation(const QueryStratum& stratum,
                             const ViewFactKey& fact);

  bool InWorking(const ViewFactKey& fact) const {
    return working_.ContainsApp(fact.vid, fact.method, fact.app);
  }

  /// Folds the scratch index-probe counters into stats_ (called once a
  /// materialization or maintenance run finishes).
  void FoldIndexStats();

  std::string name_;
  QueryProgram program_;
  QueryStratification stratification_;
  std::shared_ptr<const AnalysisReport> analysis_;
  SymbolTable& symbols_;
  VersionTable& versions_;
  TraceSink* trace_;
  int num_threads_;

  /// Base plus derived facts (the served result).
  ObjectBase working_;
  /// Derivation counts for facts of counting-maintained strata.
  std::unordered_map<ViewFactKey, int64_t, ViewFactKeyHash> support_;
  std::unordered_set<uint32_t> derived_methods_;
  ViewStats stats_;
  /// Scratch bound-result probe counters for the current run's
  /// MatchContexts; FoldIndexStats moves them into stats_.
  IndexStats istats_;
  Status health_ = Status::Ok();
};

}  // namespace verso

#endif  // VERSO_VIEWS_VIEW_H_
