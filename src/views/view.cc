#include "views/view.h"

#include <algorithm>
#include <memory>

#include "core/match.h"
#include "core/parallel_eval.h"

namespace verso {

namespace {

constexpr uint32_t kMaxRounds = 1u << 20;

/// Minimum work before a DRed phase fans out across the worker pool:
/// an overdeletion wave of fewer triggers / a rederivation pass over
/// fewer facts stays serial (deterministic serial quantities, so the
/// serial and parallel paths make identical decisions).
constexpr size_t kMinParallelTriggers = 16;
constexpr size_t kMinParallelRederive = 16;

/// True iff body literal `li` (a version-literal of the fact's method),
/// instantiated under a complete `bindings`, denotes exactly `fact`.
/// The dedup test of counting maintenance: a derivation touching the
/// changed fact at several occurrences is counted at its lowest one.
bool LiteralGroundsToFact(const Rule& rule, uint32_t li,
                          const Bindings& bindings, const DeltaFact& fact,
                          VersionTable& versions) {
  const Literal& lit = rule.body[li];
  Vid vid = ResolveVid(lit.version.version, bindings, versions);
  if (vid != fact.vid) return false;
  const AppPattern& app = lit.version.app;
  if (app.args.size() != fact.app.args.size()) return false;
  auto value = [&](const ObjTerm& term) {
    return term.is_var ? bindings[term.var.value] : term.oid;
  };
  for (size_t i = 0; i < app.args.size(); ++i) {
    if (value(app.args[i]) != fact.app.args[i]) return false;
  }
  return value(app.result) == fact.app.result;
}

DeltaFact ToDeltaFact(const ViewFactKey& key, bool added) {
  return DeltaFact{key.vid, key.method, key.app, added};
}

/// Context-parameterized core of MaterializedView::ProbeTrigger: probes a
/// changed fact through its positive (or negated) body occurrences of the
/// stratum's rules against ctx's object base. Shared by the serial member
/// wrapper and the parallel lanes, which pass their overlay tables and a
/// frozen base copy.
Status ProbeTriggerCtx(const QueryProgram& program,
                       const QueryStratum& stratum, const DeltaFact& fact,
                       bool through_negation, MatchContext& ctx,
                       uint64_t& seed_probes,
                       std::vector<ViewFactKey>& heads) {
  Bindings seed;
  for (uint32_t r : stratum.rules) {
    const Rule& rule = program.rules[r];
    for (uint32_t li = 0; li < rule.body.size(); ++li) {
      const Literal& lit = rule.body[li];
      if (lit.kind != Literal::Kind::kVersion) continue;
      if (lit.negated != through_negation) continue;
      if (lit.version.app.method != fact.method) continue;
      if (!UnifyLiteralPattern(rule, li, fact, ctx.versions, seed)) continue;
      ++seed_probes;
      VERSO_RETURN_IF_ERROR(ForEachBodyMatchFrom(
          rule, ctx, seed, static_cast<int>(li),
          [&](const Bindings& bindings) -> Status {
            // Count each derivation at its lowest matching occurrence.
            for (uint32_t j = 0; j < li; ++j) {
              const Literal& lj = rule.body[j];
              if (lj.kind != Literal::Kind::kVersion) continue;
              if (lj.negated != through_negation) continue;
              if (lj.version.app.method != fact.method) continue;
              if (LiteralGroundsToFact(rule, j, bindings, fact,
                                       ctx.versions)) {
                return Status::Ok();
              }
            }
            VERSO_ASSIGN_OR_RETURN(
                DeltaFact head,
                ResolveHeadFact(rule, bindings, ctx.versions));
            heads.push_back({head.vid, head.method, std::move(head.app)});
            return Status::Ok();
          }));
    }
  }
  return Status::Ok();
}

/// Context-parameterized core of MaterializedView::HasDerivation.
Result<bool> HasDerivationCtx(const QueryProgram& program,
                              const QueryStratum& stratum,
                              const ViewFactKey& fact, MatchContext& ctx,
                              uint64_t& rederive_probes) {
  DeltaFact probe = ToDeltaFact(fact, /*added=*/true);
  Bindings seed;
  for (uint32_t r : stratum.rules) {
    const Rule& rule = program.rules[r];
    if (rule.head.app.method != fact.method) continue;
    if (!SeedBindingsFromHead(rule, probe, ctx.versions, seed)) continue;
    ++rederive_probes;
    bool found = false;
    Status status = ForEachBodyMatchFrom(
        rule, ctx, seed, /*skip_literal=*/-1,
        [&](const Bindings&) -> Status {
          found = true;
          // Abort enumeration: one derivation is enough.
          return Status::NotFound("derivation found");
        });
    if (found) return true;
    VERSO_RETURN_IF_ERROR(status);
  }
  return false;
}

/// One parallel probe task's recording (heads for Phase A, the
/// derivability verdict for Phase B), merged in task order.
struct ProbeTaskOutput {
  int lane = -1;
  EvalLane::Mark end;
  std::vector<ViewFactKey> heads;
  bool derivable = false;
  uint64_t seed_probes = 0;
  uint64_t rederive_probes = 0;
  IndexStats index;
  Status status = Status::Ok();
  bool threw = false;
};

std::vector<std::unique_ptr<EvalLane>> MakeViewLanes(
    int count, const SymbolTable& symbols, const VersionTable& versions,
    const ObjectBase& working) {
  std::vector<std::unique_ptr<EvalLane>> lanes;
  lanes.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    lanes.push_back(std::make_unique<EvalLane>(symbols, versions, working));
  }
  return lanes;
}

/// Remaps a lane-local head key into real-table ids.
ViewFactKey MapHead(const EvalLane& lane, ViewFactKey head) {
  head.vid = lane.MapVid(head.vid);
  head.method = lane.MapMethod(head.method);
  for (Oid& arg : head.app.args) arg = lane.MapOid(arg);
  head.app.result = lane.MapOid(head.app.result);
  return head;
}

}  // namespace

Result<std::unique_ptr<MaterializedView>> MaterializedView::Create(
    std::string name, QueryProgram program, const ObjectBase& base,
    SymbolTable& symbols, VersionTable& versions, TraceSink* trace,
    const AnalysisOptions& analysis, int num_threads) {
  for (MethodId m : program.derived_methods) {
    if (base.VidsWithMethod(m) != nullptr) {
      return Status::InvalidArgument(
          "view '" + name + "': derived method '" +
          std::string(symbols.MethodName(m)) +
          "' already has stored facts in the object base");
    }
  }
  // Analyze-on-CREATE: blocking diagnostics refuse the registration
  // before the (expensive) initial materialization starts.
  std::shared_ptr<const AnalysisReport> report;
  if (analysis.enabled) {
    report = std::make_shared<AnalysisReport>(
        AnalyzeDerivedProgram(program, symbols, ContextFromBase(base)));
    VERSO_RETURN_IF_ERROR(report->FirstBlocking(analysis));
  }
  std::unique_ptr<MaterializedView> view(new MaterializedView(
      std::move(name), std::move(program), base, symbols, versions, trace,
      num_threads));
  view->analysis_ = std::move(report);
  VERSO_ASSIGN_OR_RETURN(
      view->stratification_,
      AnalyzeQueryProgram(view->program_, symbols));
  for (MethodId m : view->program_.derived_methods) {
    view->derived_methods_.insert(m.value);
  }
  VERSO_RETURN_IF_ERROR(view->Materialize());
  return view;
}

Status MaterializedView::Materialize() {
  ++stats_.full_evaluations;
  MatchContext ctx{symbols_, versions_, working_, &istats_};
  // Buffer head facts per enumeration: sinks must not grow the object
  // base mid-match (the matcher holds pointers into its fact vectors).
  std::vector<ViewFactKey> pending;

  for (const QueryStratum& stratum : stratification_.strata) {
    if (!stratum.recursive) {
      // Counting stratum: one full pass per rule; every satisfying body
      // binding is one derivation of its head fact.
      for (uint32_t r : stratum.rules) {
        const Rule& rule = program_.rules[r];
        pending.clear();
        VERSO_RETURN_IF_ERROR(ForEachBodyMatch(
            rule, ctx, [&](const Bindings& bindings) -> Status {
              VERSO_ASSIGN_OR_RETURN(
                  DeltaFact head, ResolveHeadFact(rule, bindings, versions_));
              pending.push_back({head.vid, head.method, std::move(head.app)});
              return Status::Ok();
            }));
        for (ViewFactKey& head : pending) {
          if (++support_[head] == 1) {
            working_.Insert(head.vid, head.method, head.app);
          }
          ++stats_.support_increments;
        }
      }
      continue;
    }

    // Recursive stratum: set-semantics semi-naive fixpoint (DRed strata
    // carry no counts); shared with EvaluateQueries.
    QueryStats qstats;
    VERSO_RETURN_IF_ERROR(SolveRecursiveStratum(
        program_, stratum, symbols_, versions_, working_, kMaxRounds,
        &qstats, num_threads_));
    stats_.seed_probes += qstats.delta_joins;
    stats_.index_probes += qstats.index_probes;
    stats_.index_hits += qstats.index_hits;
    stats_.indexed_scan_avoided_facts += qstats.indexed_scan_avoided_facts;
  }
  FoldIndexStats();
  return Status::Ok();
}

std::unordered_set<uint32_t> MaterializedView::ReadMethods(
    const QueryStratum& stratum) const {
  std::unordered_set<uint32_t> methods;
  for (uint32_t r : stratum.rules) {
    for (const Literal& lit : program_.rules[r].body) {
      if (lit.kind != Literal::Kind::kVersion) continue;
      methods.insert(lit.version.app.method.value);
    }
  }
  return methods;
}

Status MaterializedView::ProbeTrigger(const QueryStratum& stratum,
                                      const Trigger& trigger,
                                      std::vector<ViewFactKey>& heads) {
  MatchContext ctx{symbols_, versions_, working_, &istats_};
  return ProbeTriggerCtx(program_, stratum, trigger.fact,
                         trigger.through_negation, ctx, stats_.seed_probes,
                         heads);
}

Result<bool> MaterializedView::HasDerivation(const QueryStratum& stratum,
                                             const ViewFactKey& fact) {
  MatchContext ctx{symbols_, versions_, working_, &istats_};
  return HasDerivationCtx(program_, stratum, fact, ctx,
                          stats_.rederive_probes);
}

Status MaterializedView::MaintainCounting(const QueryStratum& stratum,
                                          const DeltaLog& input,
                                          DeltaLog& out) {
  std::unordered_set<uint32_t> read = ReadMethods(stratum);
  std::vector<const DeltaFact*> facts;
  for (const DeltaFact& fact : input) {
    if (read.count(fact.method.value)) facts.push_back(&fact);
  }
  if (facts.empty()) return Status::Ok();

  // Facts whose support changed, in first-touch order. Counts may dip
  // negative transiently (the reverse sweep can meet a lost derivation
  // before the gained one that funds it); membership is reconciled once
  // the sweep ends, which is safe because a stratum's rules never read the
  // methods the stratum defines.
  std::unordered_set<ViewFactKey, ViewFactKeyHash> touched;
  std::vector<ViewFactKey> touched_order;
  std::vector<ViewFactKey> heads;

  auto apply = [&](int64_t sign) {
    for (ViewFactKey& head : heads) {
      support_[head] += sign;
      if (sign > 0) {
        ++stats_.support_increments;
      } else {
        ++stats_.support_decrements;
      }
      if (touched.insert(head).second) touched_order.push_back(head);
    }
    heads.clear();
  };

  // The commit applied its facts in stream order; replaying the stream in
  // REVERSE against the already-updated base visits, fact by fact, exactly
  // the intermediate states the forward one-at-a-time counting algorithm
  // sees — without ever materializing the old base. At each fact's turn:
  // derivations gained are probed with the fact in its new state,
  // derivations lost with it restored to its old state.
  for (auto it = facts.rbegin(); it != facts.rend(); ++it) {
    const DeltaFact& fact = **it;
    if (fact.added) {
      VERSO_RETURN_IF_ERROR(
          ProbeTrigger(stratum, {fact, /*through_negation=*/false}, heads));
      apply(+1);
      working_.Erase(fact.vid, fact.method, fact.app);
      VERSO_RETURN_IF_ERROR(
          ProbeTrigger(stratum, {fact, /*through_negation=*/true}, heads));
      apply(-1);
    } else {
      VERSO_RETURN_IF_ERROR(
          ProbeTrigger(stratum, {fact, /*through_negation=*/true}, heads));
      apply(+1);
      working_.Insert(fact.vid, fact.method, fact.app);
      VERSO_RETURN_IF_ERROR(
          ProbeTrigger(stratum, {fact, /*through_negation=*/false}, heads));
      apply(-1);
    }
  }
  // The sweep unwound the stream; re-apply it to restore the new state.
  for (const DeltaFact* fact : facts) {
    if (fact->added) {
      working_.Insert(fact->vid, fact->method, fact->app);
    } else {
      working_.Erase(fact->vid, fact->method, fact->app);
    }
  }

  // Reconcile membership: a view fact holds iff its support is positive.
  for (const ViewFactKey& key : touched_order) {
    auto it = support_.find(key);
    int64_t count = it == support_.end() ? 0 : it->second;
    if (count < 0) {
      return Status::Internal("view '" + name_ +
                              "': support count underflow");
    }
    bool member = InWorking(key);
    if (count > 0 && !member) {
      working_.Insert(key.vid, key.method, key.app);
      out.push_back(ToDeltaFact(key, /*added=*/true));
      ++stats_.facts_added;
    } else if (count == 0 && member) {
      working_.Erase(key.vid, key.method, key.app);
      out.push_back(ToDeltaFact(key, /*added=*/false));
      ++stats_.facts_removed;
    }
    if (count == 0 && it != support_.end()) support_.erase(it);
  }
  return Status::Ok();
}

Status MaterializedView::MaintainDRed(uint32_t stratum_index,
                                      const QueryStratum& stratum,
                                      const DeltaLog& input, DeltaLog& out) {
  std::unordered_set<uint32_t> read = ReadMethods(stratum);
  std::vector<const DeltaFact*> facts;
  for (const DeltaFact& fact : input) {
    if (read.count(fact.method.value)) facts.push_back(&fact);
  }
  if (facts.empty()) return Status::Ok();
  ParallelTelemetry ptel;

  // ---- Phase A: overdelete, evaluated against the old base state. ----
  // Restore the old state of this stratum's inputs (the commit and lower
  // strata already installed the new one).
  for (const DeltaFact* fact : facts) {
    if (fact->added) {
      working_.Erase(fact->vid, fact->method, fact->app);
    } else {
      working_.Insert(fact->vid, fact->method, fact->app);
    }
  }

  std::vector<Trigger> queue;
  for (const DeltaFact* fact : facts) {
    // A removal kills matches through positive occurrences; an addition
    // kills matches through negated occurrences (which held while the
    // fact was absent).
    queue.push_back({*fact, /*through_negation=*/fact->added});
  }

  // Textbook DRed overdeletion: one body literal ranges over the delta
  // (the trigger), every other literal over the FULL old database — so
  // nothing is erased until the cascade completes, or derivations that
  // join two simultaneously-overdeleted facts (nonlinear recursion) would
  // be missed. The `overdeleted` set alone dedups the cascade.
  //
  // The cascade never touches working_, so each generation of the queue
  // (the entries appended by the previous one) is a frozen wave: large
  // waves fan their trigger probes across the worker pool, and the merge
  // feeds each task's heads through the exact serial dedup in task order
  // — overdeleted_order, the queue, and every counter come out identical
  // to a serial run.
  std::unordered_set<ViewFactKey, ViewFactKeyHash> overdeleted;
  std::vector<ViewFactKey> overdeleted_order;
  std::vector<ViewFactKey> heads;
  auto absorb_heads = [&](std::vector<ViewFactKey>& found) {
    for (ViewFactKey& head : found) {
      if (!InWorking(head) || overdeleted.count(head)) continue;
      overdeleted.insert(head);
      overdeleted_order.push_back(head);
      ++stats_.overdeleted;
      queue.push_back(
          {ToDeltaFact(head, /*added=*/false), /*through_negation=*/false});
    }
  };
  for (size_t wave_begin = 0; wave_begin < queue.size();) {
    const size_t wave_end = queue.size();
    const size_t wave = wave_end - wave_begin;
    bool wave_done = false;
    if (num_threads_ > 1 && wave >= kMinParallelTriggers) {
      const int lane_count = static_cast<int>(
          std::min<size_t>(static_cast<size_t>(num_threads_), wave));
      std::vector<std::unique_ptr<EvalLane>> lanes =
          MakeViewLanes(lane_count, symbols_, versions_, working_);
      std::vector<ProbeTaskOutput> outputs(wave);
      RunTasksOnLanes(
          lane_count, wave,
          [&](int lane_index, size_t task) {
            ProbeTaskOutput& o = outputs[task];
            o.lane = lane_index;
            EvalLane& lane = *lanes[lane_index];
            try {
              const Trigger& trigger = queue[wave_begin + task];
              MatchContext lane_ctx{lane.symbols, lane.versions, lane.base,
                                    &o.index};
              o.status = ProbeTriggerCtx(program_, stratum, trigger.fact,
                                         trigger.through_negation, lane_ctx,
                                         o.seed_probes, o.heads);
            } catch (...) {
              o.threw = true;
            }
            o.end = lane.mark();
          },
          ptel);
      bool fell_back = false;
      for (const ProbeTaskOutput& o : outputs) {
        if (o.threw) fell_back = true;
      }
      if (!fell_back) {
        ++ptel.parallel_rounds;
        for (ProbeTaskOutput& o : outputs) {
          EvalLane& lane = *lanes[o.lane];
          lane.ReplayTo(o.end, symbols_, versions_);
          heads.clear();
          heads.reserve(o.heads.size());
          for (ViewFactKey& head : o.heads) {
            heads.push_back(MapHead(lane, std::move(head)));
          }
          stats_.seed_probes += o.seed_probes;
          istats_.index_probes += o.index.index_probes;
          istats_.index_hits += o.index.index_hits;
          istats_.indexed_scan_avoided_facts +=
              o.index.indexed_scan_avoided_facts;
          VERSO_RETURN_IF_ERROR(o.status);
          absorb_heads(heads);
        }
        wave_done = true;
      } else {
        ++ptel.fallback_rounds;
      }
    }
    if (!wave_done) {
      for (size_t qi = wave_begin; qi < wave_end; ++qi) {
        Trigger trigger = queue[qi];
        heads.clear();
        VERSO_RETURN_IF_ERROR(ProbeTrigger(stratum, trigger, heads));
        absorb_heads(heads);
      }
    }
    wave_begin = wave_end;
  }

  // Install the overdeletion and the new state of the inputs.
  for (const ViewFactKey& fact : overdeleted_order) {
    working_.Erase(fact.vid, fact.method, fact.app);
  }
  for (const DeltaFact* fact : facts) {
    if (fact->added) {
      working_.Insert(fact->vid, fact->method, fact->app);
    } else {
      working_.Erase(fact->vid, fact->method, fact->app);
    }
  }

  // ---- Phase B: rederive — goal-directed alternative-proof probes. ----
  // Probes run FROZEN: every overdeleted fact is probed against the
  // post-overdeletion state, and the survivors install together at the
  // end. Within a recursive stratum all same-stratum body occurrences are
  // positive (stratified negation), so a fact whose only surviving proofs
  // pass through other rederived facts is recovered by Phase C's
  // insertion propagation — the final state and the emitted delta are the
  // ones eager per-fact reinsertion would produce, and the frozen probes
  // can fan across the worker pool bit-identically to the serial path.
  std::vector<Trigger> insert_queue;
  for (const DeltaFact* fact : facts) {
    // An addition creates matches through positive occurrences; a removal
    // creates matches through negated occurrences.
    insert_queue.push_back({*fact, /*through_negation=*/!fact->added});
  }
  std::vector<char> derivable(overdeleted_order.size(), 0);
  bool rederive_done = false;
  if (num_threads_ > 1 && overdeleted_order.size() >= kMinParallelRederive) {
    const size_t task_count = overdeleted_order.size();
    const int lane_count = static_cast<int>(
        std::min<size_t>(static_cast<size_t>(num_threads_), task_count));
    std::vector<std::unique_ptr<EvalLane>> lanes =
        MakeViewLanes(lane_count, symbols_, versions_, working_);
    std::vector<ProbeTaskOutput> outputs(task_count);
    RunTasksOnLanes(
        lane_count, task_count,
        [&](int lane_index, size_t task) {
          ProbeTaskOutput& o = outputs[task];
          o.lane = lane_index;
          EvalLane& lane = *lanes[lane_index];
          try {
            MatchContext lane_ctx{lane.symbols, lane.versions, lane.base,
                                  &o.index};
            Result<bool> found =
                HasDerivationCtx(program_, stratum, overdeleted_order[task],
                                 lane_ctx, o.rederive_probes);
            if (found.ok()) {
              o.derivable = *found;
            } else {
              o.status = found.status();
            }
          } catch (...) {
            o.threw = true;
          }
          o.end = lane.mark();
        },
        ptel);
    bool fell_back = false;
    for (const ProbeTaskOutput& o : outputs) {
      if (o.threw) fell_back = true;
    }
    if (!fell_back) {
      ++ptel.parallel_rounds;
      for (size_t i = 0; i < outputs.size(); ++i) {
        ProbeTaskOutput& o = outputs[i];
        EvalLane& lane = *lanes[o.lane];
        lane.ReplayTo(o.end, symbols_, versions_);
        stats_.rederive_probes += o.rederive_probes;
        istats_.index_probes += o.index.index_probes;
        istats_.index_hits += o.index.index_hits;
        istats_.indexed_scan_avoided_facts +=
            o.index.indexed_scan_avoided_facts;
        VERSO_RETURN_IF_ERROR(o.status);
        derivable[i] = o.derivable ? 1 : 0;
      }
      rederive_done = true;
    } else {
      ++ptel.fallback_rounds;
    }
  }
  if (!rederive_done) {
    for (size_t i = 0; i < overdeleted_order.size(); ++i) {
      VERSO_ASSIGN_OR_RETURN(bool found,
                             HasDerivation(stratum, overdeleted_order[i]));
      derivable[i] = found ? 1 : 0;
    }
  }
  for (size_t i = 0; i < overdeleted_order.size(); ++i) {
    if (!derivable[i]) continue;
    const ViewFactKey& fact = overdeleted_order[i];
    working_.Insert(fact.vid, fact.method, fact.app);
    ++stats_.rederived;
    insert_queue.push_back(
        {ToDeltaFact(fact, /*added=*/true), /*through_negation=*/false});
  }

  // ---- Phase C: semi-naive insertion propagation (new state). --------
  std::vector<ViewFactKey> inserted_order;
  std::unordered_set<ViewFactKey, ViewFactKeyHash> inserted;
  for (size_t qi = 0; qi < insert_queue.size(); ++qi) {
    Trigger trigger = insert_queue[qi];
    heads.clear();
    VERSO_RETURN_IF_ERROR(ProbeTrigger(stratum, trigger, heads));
    for (ViewFactKey& head : heads) {
      if (InWorking(head)) continue;
      working_.Insert(head.vid, head.method, head.app);
      if (inserted.insert(head).second) inserted_order.push_back(head);
      insert_queue.push_back(
          {ToDeltaFact(head, /*added=*/true), /*through_negation=*/false});
    }
  }

  // ---- Emit this stratum's net delta. --------------------------------
  for (const ViewFactKey& fact : overdeleted_order) {
    if (!InWorking(fact)) {
      out.push_back(ToDeltaFact(fact, /*added=*/false));
      ++stats_.facts_removed;
    }
  }
  for (const ViewFactKey& fact : inserted_order) {
    // A reinserted overdeleted fact is a net no-op; only genuinely new
    // facts are reported upward.
    if (InWorking(fact) && !overdeleted.count(fact)) {
      out.push_back(ToDeltaFact(fact, /*added=*/true));
      ++stats_.facts_added;
    }
  }
  if (trace_ != nullptr && ptel.used()) {
    trace_->OnParallelEval(stratum_index, ptel.parallel_rounds, ptel.tasks,
                           ptel.fallback_rounds, ptel.queue_wait_us);
  }
  return Status::Ok();
}

std::vector<MethodId> MaterializedView::DerivedMethods() const {
  std::vector<MethodId> methods = program_.derived_methods;
  std::sort(methods.begin(), methods.end());
  return methods;
}

void MaterializedView::FoldIndexStats() {
  stats_.index_probes += istats_.index_probes;
  stats_.index_hits += istats_.index_hits;
  stats_.indexed_scan_avoided_facts += istats_.indexed_scan_avoided_facts;
  istats_ = IndexStats();
}

Status MaterializedView::ApplyBaseDelta(const DeltaLog& delta,
                                        DeltaLog* view_delta) {
  if (!health_.ok()) return health_;
  Status status = MaintainAll(delta, view_delta);
  if (!status.ok()) health_ = status;
  return status;
}

Status MaterializedView::MaintainAll(const DeltaLog& delta,
                                     DeltaLog* view_delta) {
  ++stats_.maintenance_runs;
  stats_.delta_facts_seen += delta.size();
  uint64_t added_before = stats_.facts_added;
  uint64_t removed_before = stats_.facts_removed;
  uint64_t overdeleted_before = stats_.overdeleted;
  uint64_t rederived_before = stats_.rederived;

  for (const DeltaFact& fact : delta) {
    if (derived_methods_.count(fact.method.value)) {
      return Status::InvalidArgument(
          "view '" + name_ + "': committed transaction writes derived "
          "method '" + std::string(symbols_.MethodName(fact.method)) + "'");
    }
  }

  // Install the base transition; every stratum below reads it as new.
  for (const DeltaFact& fact : delta) {
    bool changed = fact.added
                       ? working_.Insert(fact.vid, fact.method, fact.app)
                       : working_.Erase(fact.vid, fact.method, fact.app);
    if (!changed) {
      return Status::Internal("view '" + name_ +
                              "': commit delta out of sync with view base");
    }
  }

  // Ripple bottom-up: each stratum consumes the commit delta plus every
  // lower stratum's emitted changes.
  DeltaLog stream = delta;
  for (size_t si = 0; si < stratification_.strata.size(); ++si) {
    const QueryStratum& stratum = stratification_.strata[si];
    DeltaLog emitted;
    if (stratum.recursive) {
      VERSO_RETURN_IF_ERROR(MaintainDRed(static_cast<uint32_t>(si), stratum,
                                         stream, emitted));
    } else {
      VERSO_RETURN_IF_ERROR(MaintainCounting(stratum, stream, emitted));
    }
    stream.insert(stream.end(), emitted.begin(), emitted.end());
  }

  FoldIndexStats();
  if (trace_ != nullptr) {
    trace_->OnViewMaintenance(name_, delta.size(),
                              stats_.facts_added - added_before,
                              stats_.facts_removed - removed_before,
                              stats_.overdeleted - overdeleted_before,
                              stats_.rederived - rederived_before);
  }
  // `stream` now holds the commit's base transition plus every stratum's
  // emitted derived-fact changes — exactly the transition result() took.
  if (view_delta != nullptr) *view_delta = std::move(stream);
  return Status::Ok();
}

}  // namespace verso
