#ifndef VERSO_VIEWS_CATALOG_H_
#define VERSO_VIEWS_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "storage/database.h"
#include "views/view.h"

namespace verso {

/// Observer of per-commit view deltas: after a commit's maintenance run
/// succeeds for a view, the catalog hands the *result-level* fact changes
/// of that view (base transition + derived changes, in installation
/// order) to its registered sink. This is the publication point view
/// subscriptions (src/api) fan out from. Poisoned views and failed
/// maintenance runs publish nothing.
class ViewDeltaSink {
 public:
  virtual ~ViewDeltaSink() = default;
  /// `epoch` is the commit epoch of the transaction this delta belongs to
  /// (threaded from CommitObserver::OnCommit, so within an ExecuteBatch
  /// group every member's deltas carry that member's own epoch).
  virtual void OnViewDelta(const MaterializedView& view,
                           const DeltaLog& view_delta, uint64_t epoch) = 0;
};

/// Registry of named materialized views, maintained from a Database's
/// commit delta stream. Register a view once (full evaluation), attach the
/// catalog to a database, and every committed transaction — Execute,
/// ExecuteBatch, ImportBase — keeps all registered views incrementally
/// up to date; result(name) always equals a from-scratch EvaluateQueries
/// over the current committed base.
class ViewCatalog : public CommitObserver {
 public:
  ViewCatalog(SymbolTable& symbols, VersionTable& versions,
              TraceSink* trace = nullptr)
      : symbols_(symbols), versions_(versions), trace_(trace) {}
  explicit ViewCatalog(Engine& engine, TraceSink* trace = nullptr)
      : ViewCatalog(engine.symbols(), engine.versions(), trace) {}
  ~ViewCatalog() override { Detach(); }

  ViewCatalog(const ViewCatalog&) = delete;
  ViewCatalog& operator=(const ViewCatalog&) = delete;

  /// Registers `program` as a materialized view over `base` (typically
  /// db.current()), evaluating it in full once. Fails on duplicate names,
  /// and on blocking static-analysis diagnostics (see
  /// MaterializedView::Create; pass analysis.enabled = false to skip).
  Status Register(std::string name, QueryProgram program,
                  const ObjectBase& base,
                  const AnalysisOptions& analysis = AnalysisOptions());

  /// Parses `source` as a derived-method program and registers it.
  Status RegisterText(std::string name, std::string_view source,
                      const ObjectBase& base,
                      const AnalysisOptions& analysis = AnalysisOptions());

  /// Drops a registered view.
  Status Drop(std::string_view name);

  /// The registered view, or nullptr.
  const MaterializedView* Find(std::string_view name) const;

  /// Registered view names, sorted.
  std::vector<std::string> names() const;
  size_t size() const { return views_.size(); }

  /// Subscribes this catalog to `db`'s commit stream (AddObserver). The
  /// catalog must outlive the attachment; the destructor detaches.
  /// Attaching to the database the catalog is already attached to is a
  /// no-op — maintenance runs exactly once per commit regardless of how
  /// often Attach is called.
  void Attach(Database& db);
  void Detach();

  /// Registers the sink per-commit view deltas are published to (not
  /// owned; nullptr to unregister). At most one sink.
  void SetDeltaSink(ViewDeltaSink* sink) { sink_ = sink; }

  /// Replaces the trace sink used for views registered from now on.
  void set_trace(TraceSink* trace) { trace_ = trace; }

  /// Evaluation lanes views registered from now on use for their initial
  /// materialization and DRed maintenance (see MaterializedView::Create);
  /// 0 or 1 keeps everything serial.
  void set_num_threads(int num_threads) { num_threads_ = num_threads; }

  /// Monotone counter bumped by every successful Register/Drop. Cached
  /// snapshots (Connection::Pin) compare it to detect view DDL between
  /// commits — CREATE VIEW / DROP VIEW do not advance the commit epoch,
  /// so the epoch alone cannot invalidate a snapshot's view set.
  uint64_t ddl_generation() const { return ddl_generation_; }

  /// CommitObserver: routes the committed delta to every registered view.
  Status OnCommit(const DeltaLog& delta, const ObjectBase& committed,
                  uint64_t epoch) override;

  /// CommitObserver: the attached database is going away — forget it so
  /// a later Detach()/destruction does not touch freed memory.
  void OnDatabaseClosed() override { attached_ = nullptr; }

  /// Counters summed over all registered views.
  ViewStats TotalStats() const;

 private:
  SymbolTable& symbols_;
  VersionTable& versions_;
  TraceSink* trace_;
  int num_threads_ = 0;
  ViewDeltaSink* sink_ = nullptr;
  Database* attached_ = nullptr;
  uint64_t ddl_generation_ = 0;
  std::map<std::string, std::unique_ptr<MaterializedView>, std::less<>>
      views_;
};

}  // namespace verso

#endif  // VERSO_VIEWS_CATALOG_H_
