#include "views/catalog.h"

namespace verso {

Status ViewCatalog::Register(std::string name, QueryProgram program,
                             const ObjectBase& base,
                             const AnalysisOptions& analysis) {
  if (views_.count(name)) {
    return Status::InvalidArgument("view '" + name + "' already registered");
  }
  VERSO_ASSIGN_OR_RETURN(
      std::unique_ptr<MaterializedView> view,
      MaterializedView::Create(name, std::move(program), base, symbols_,
                               versions_, trace_, analysis, num_threads_));
  views_.emplace(std::move(name), std::move(view));
  ++ddl_generation_;
  return Status::Ok();
}

Status ViewCatalog::RegisterText(std::string name, std::string_view source,
                                 const ObjectBase& base,
                                 const AnalysisOptions& analysis) {
  VERSO_ASSIGN_OR_RETURN(QueryProgram program,
                         ParseQueryProgram(source, symbols_));
  return Register(std::move(name), std::move(program), base, analysis);
}

Status ViewCatalog::Drop(std::string_view name) {
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound("view '" + std::string(name) +
                            "' is not registered");
  }
  views_.erase(it);
  ++ddl_generation_;
  return Status::Ok();
}

const MaterializedView* ViewCatalog::Find(std::string_view name) const {
  auto it = views_.find(name);
  return it == views_.end() ? nullptr : it->second.get();
}

std::vector<std::string> ViewCatalog::names() const {
  std::vector<std::string> out;
  out.reserve(views_.size());
  for (const auto& [name, view] : views_) out.push_back(name);
  return out;
}

void ViewCatalog::Attach(Database& db) {
  // Re-attaching to the same database must not re-register the observer:
  // a doubled registration would run maintenance twice per commit,
  // doubling work and stats (and corrupting counting views, whose deltas
  // would be applied twice).
  if (attached_ == &db) return;
  Detach();
  attached_ = &db;
  db.AddObserver(this);
}

void ViewCatalog::Detach() {
  if (attached_ != nullptr) {
    attached_->RemoveObserver(this);
    attached_ = nullptr;
  }
}

Status ViewCatalog::OnCommit(const DeltaLog& delta,
                             const ObjectBase& committed, uint64_t epoch) {
  (void)committed;
  // Fan the delta out to EVERY live view even if one fails: a failure
  // poisons that view alone (see MaterializedView::health); the other
  // views must keep tracking the commit stream. The error surfaces to the
  // committer once — already-poisoned views are skipped afterwards, so a
  // broken view does not wedge every subsequent commit (its health() and
  // Drop/re-Register are the recovery path).
  Status first_error;
  DeltaLog view_delta;
  for (auto& [name, view] : views_) {
    if (!view->health().ok()) continue;
    view_delta.clear();
    Status status = view->ApplyBaseDelta(
        delta, sink_ != nullptr ? &view_delta : nullptr);
    if (!status.ok()) {
      if (first_error.ok()) first_error = status;
      continue;  // a failed run has no coherent delta to publish
    }
    if (sink_ != nullptr) sink_->OnViewDelta(*view, view_delta, epoch);
  }
  return first_error;
}

ViewStats ViewCatalog::TotalStats() const {
  ViewStats total;
  for (const auto& [name, view] : views_) {
    const ViewStats& s = view->stats();
    total.full_evaluations += s.full_evaluations;
    total.maintenance_runs += s.maintenance_runs;
    total.delta_facts_seen += s.delta_facts_seen;
    total.facts_added += s.facts_added;
    total.facts_removed += s.facts_removed;
    total.support_increments += s.support_increments;
    total.support_decrements += s.support_decrements;
    total.overdeleted += s.overdeleted;
    total.rederived += s.rederived;
    total.seed_probes += s.seed_probes;
    total.rederive_probes += s.rederive_probes;
  }
  return total;
}

}  // namespace verso
