#ifndef VERSO_BASELINES_BASELINES_H_
#define VERSO_BASELINES_BASELINES_H_

#include <vector>

#include "core/object_base.h"
#include "core/program.h"
#include "core/symbol_table.h"
#include "core/version_table.h"
#include "util/result.h"

namespace verso {

/// Comparator semantics discussed in Section 2.4 of the paper. Both
/// baselines interpret update-rules *without* object versioning: the head
/// `mod[E].sal -> (S,S2)` mutates E's state in place. This is the
/// behaviour the paper's versioning is designed to improve on — the naive
/// semantics loops on the salary-raise rule (each round sees the already
/// raised salary and raises it again), and ordering effects must be
/// hand-controlled by splitting rules into modules (Logres-style).
///
/// Restrictions: bodies must not contain update-terms (they have no
/// meaning without versions), and version-id-terms must be plain
/// object-id-terms (no ins/del/mod functors).

struct InPlaceOptions {
  /// Round bound; reaching it reports divergence instead of an error so
  /// benchmarks can measure "does not terminate" programs.
  uint32_t max_rounds = 64;
};

struct InPlaceOutcome {
  ObjectBase base;
  uint32_t rounds = 0;
  bool diverged = false;        // hit max_rounds while still changing
  size_t updates_applied = 0;   // state-changing fact mutations
};

/// Checks the baseline restrictions and runs AnalyzeRule on every rule.
Status ValidateInPlaceProgram(Program& program, const SymbolTable& symbols);

/// Naive non-versioned semantics: apply all rules' updates in place,
/// round after round, until nothing changes or `max_rounds` is reached.
Result<InPlaceOutcome> RunNaiveUpdate(Program& program,
                                      const ObjectBase& input,
                                      SymbolTable& symbols,
                                      VersionTable& versions,
                                      const InPlaceOptions& options = {});

/// Logres-style modular semantics: modules are evaluated in the given
/// order, each to its own in-place fixpoint. Control that verso derives
/// from VID structure must here be supplied manually by the module split
/// (the "flexible, however manual means for control" of Section 2.4).
Result<InPlaceOutcome> RunModularUpdate(std::vector<Program>& modules,
                                        const ObjectBase& input,
                                        SymbolTable& symbols,
                                        VersionTable& versions,
                                        const InPlaceOptions& options = {});

}  // namespace verso

#endif  // VERSO_BASELINES_BASELINES_H_
