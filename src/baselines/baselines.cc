#include "baselines/baselines.h"

#include <unordered_set>

#include "core/match.h"
#include "core/update.h"

namespace verso {

namespace {

/// One in-place round: derive all ground updates whose bodies hold, then
/// apply them two-phase (removals before additions) directly to the
/// version they address. Returns whether anything changed.
Result<bool> InPlaceRound(const Program& program, ObjectBase& base,
                          SymbolTable& symbols, VersionTable& versions,
                          size_t* updates_applied) {
  MatchContext ctx{symbols, versions, base};
  std::unordered_set<GroundUpdate, GroundUpdateHash> t1;
  for (const Rule& rule : program.rules) {
    Status status = ForEachBodyMatch(
        rule, ctx, [&](const Bindings& bindings) -> Status {
          Vid v = ResolveVid(rule.head.version, bindings, versions);
          if (!v.valid()) {
            return Status::Internal("unbound head version");
          }
          if (rule.head.delete_all) {
            const VersionState* state = base.StateOf(v);
            if (state == nullptr) return Status::Ok();
            for (const auto& [method, apps] : state->methods()) {
              if (method == base.exists_method()) continue;
              for (const GroundApp& app : apps) {
                GroundUpdate u;
                u.kind = UpdateKind::kDelete;
                u.version = v;
                u.method = method;
                u.app = app;
                t1.insert(std::move(u));
              }
            }
            return Status::Ok();
          }
          GroundUpdate u;
          u.kind = rule.head.kind;
          u.version = v;
          u.method = rule.head.app.method;
          u.app = ResolveApp(rule.head.app, bindings);
          if (rule.head.kind == UpdateKind::kModify) {
            u.new_result = rule.head.new_result.is_var
                               ? bindings[rule.head.new_result.var.value]
                               : rule.head.new_result.oid;
          }
          // In-place head truth: the old application must currently hold.
          if (u.kind != UpdateKind::kInsert &&
              !base.ContainsApp(v, u.method, u.app)) {
            return Status::Ok();
          }
          t1.insert(std::move(u));
          return Status::Ok();
        });
    VERSO_RETURN_IF_ERROR(status);
  }

  bool changed = false;
  for (const GroundUpdate& u : t1) {
    if (u.kind == UpdateKind::kDelete || u.kind == UpdateKind::kModify) {
      if (base.Erase(u.version, u.method, u.app)) {
        changed = true;
        ++*updates_applied;
      }
    }
  }
  for (const GroundUpdate& u : t1) {
    if (u.kind == UpdateKind::kInsert) {
      if (base.Insert(u.version, u.method, u.app)) {
        changed = true;
        ++*updates_applied;
      }
    } else if (u.kind == UpdateKind::kModify) {
      GroundApp app = u.app;
      app.result = u.new_result;
      if (base.Insert(u.version, u.method, std::move(app))) {
        changed = true;
        ++*updates_applied;
      }
    }
  }
  return changed;
}

Result<InPlaceOutcome> RunToFixpoint(const Program& program,
                                     ObjectBase base, SymbolTable& symbols,
                                     VersionTable& versions,
                                     const InPlaceOptions& options) {
  InPlaceOutcome outcome{std::move(base), 0, false, 0};
  while (true) {
    if (outcome.rounds >= options.max_rounds) {
      outcome.diverged = true;
      return outcome;
    }
    ++outcome.rounds;
    VERSO_ASSIGN_OR_RETURN(
        bool changed, InPlaceRound(program, outcome.base, symbols, versions,
                                   &outcome.updates_applied));
    if (!changed) return outcome;
  }
}

}  // namespace

Status ValidateInPlaceProgram(Program& program, const SymbolTable& symbols) {
  VERSO_RETURN_IF_ERROR(program.Analyze(symbols));
  for (const Rule& rule : program.rules) {
    if (!rule.head.version.ops.empty()) {
      return Status::InvalidArgument(
          rule.DisplayName() +
          ": baseline semantics has no versions; heads must address plain "
          "objects");
    }
    for (const Literal& lit : rule.body) {
      if (lit.kind == Literal::Kind::kUpdate) {
        return Status::InvalidArgument(
            rule.DisplayName() +
            ": update-terms in bodies are not meaningful without versions");
      }
      if (lit.kind == Literal::Kind::kVersion &&
          !lit.version.version.ops.empty()) {
        return Status::InvalidArgument(
            rule.DisplayName() +
            ": version-id-terms are not meaningful in baseline semantics");
      }
    }
  }
  return Status::Ok();
}

Result<InPlaceOutcome> RunNaiveUpdate(Program& program,
                                      const ObjectBase& input,
                                      SymbolTable& symbols,
                                      VersionTable& versions,
                                      const InPlaceOptions& options) {
  VERSO_RETURN_IF_ERROR(ValidateInPlaceProgram(program, symbols));
  ObjectBase working = input;
  working.SealExistence();
  return RunToFixpoint(program, std::move(working), symbols, versions,
                       options);
}

Result<InPlaceOutcome> RunModularUpdate(std::vector<Program>& modules,
                                        const ObjectBase& input,
                                        SymbolTable& symbols,
                                        VersionTable& versions,
                                        const InPlaceOptions& options) {
  ObjectBase working = input;
  working.SealExistence();
  InPlaceOutcome total{std::move(working), 0, false, 0};
  for (Program& module : modules) {
    VERSO_RETURN_IF_ERROR(ValidateInPlaceProgram(module, symbols));
    VERSO_ASSIGN_OR_RETURN(
        InPlaceOutcome outcome,
        RunToFixpoint(module, std::move(total.base), symbols, versions,
                      options));
    total.base = std::move(outcome.base);
    total.rounds += outcome.rounds;
    total.updates_applied += outcome.updates_applied;
    total.diverged |= outcome.diverged;
    if (total.diverged) break;
  }
  return total;
}

}  // namespace verso
