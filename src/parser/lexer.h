#ifndef VERSO_PARSER_LEXER_H_
#define VERSO_PARSER_LEXER_H_

#include <string_view>
#include <vector>

#include "parser/token.h"
#include "util/result.h"

namespace verso {

/// Tokenizes verso surface syntax. Comments run from '%' to end of line.
/// A '.' between digits is part of a numeric literal; everywhere else it
/// is the kDot token (the parser disambiguates selector vs terminator by
/// position). Errors carry line/column.
Result<std::vector<Token>> Lex(std::string_view source);

}  // namespace verso

#endif  // VERSO_PARSER_LEXER_H_
