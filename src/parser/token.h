#ifndef VERSO_PARSER_TOKEN_H_
#define VERSO_PARSER_TOKEN_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace verso {

enum class TokenKind : uint8_t {
  kEof,
  kIdent,    // lowercase-initial: object / method / functor names
  kVar,      // uppercase- or underscore-initial: variables
  kNumber,   // integer or decimal literal
  kString,   // double-quoted
  kDot,      // .   (method selector and clause terminator)
  kComma,    // ,
  kLParen,   // (
  kRParen,   // )
  kLBracket, // [
  kRBracket, // ]
  kArrow,    // ->
  kImplies,  // <-
  kAt,       // @
  kStar,     // *
  kSlash,    // /   (path conjunction or division, by position)
  kPlus,     // +
  kMinus,    // -
  kEq,       // =
  kNeq,      // !=
  kLt,       // <
  kLe,       // <=
  kGt,       // >
  kGe,       // >=
  kColon,    // :   (rule labels)
};

std::string_view TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;  // identifier / variable / number / string payload
  int line = 0;
  int column = 0;
};

}  // namespace verso

#endif  // VERSO_PARSER_TOKEN_H_
