#include "parser/parser.h"

#include <unordered_map>

#include "parser/lexer.h"
#include "util/numeric.h"

namespace verso {

namespace {

/// Recursive-descent parser over the token stream. One instance parses a
/// whole file; rule-local state (variables, expression pool) is reset per
/// clause.
class ParserImpl {
 public:
  ParserImpl(std::vector<Token> tokens, SymbolTable& symbols)
      : tokens_(std::move(tokens)), symbols_(symbols) {}

  Result<Program> ParseProgramFile() {
    Program program;
    while (!AtEof()) {
      Rule rule;
      VERSO_RETURN_IF_ERROR(ParseRule(&rule));
      program.rules.push_back(std::move(rule));
    }
    if (program.rules.empty()) {
      return Status::ParseError("empty update-program");
    }
    return program;
  }

  Result<Program> ParseDerivedRulesFile() {
    Program program;
    while (!AtEof()) {
      Rule rule;
      VERSO_RETURN_IF_ERROR(ParseDerivedRule(&rule));
      program.rules.push_back(std::move(rule));
    }
    if (program.rules.empty()) {
      return Status::ParseError("empty derived-method program");
    }
    return program;
  }

  Status ParseObjectBaseFile(VersionTable& versions, ObjectBase& base) {
    while (!AtEof()) {
      VERSO_RETURN_IF_ERROR(ParseFactClause(versions, base));
    }
    return Status::Ok();
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  SymbolTable& symbols_;

  // Rule-local state.
  Rule* rule_ = nullptr;
  std::unordered_map<std::string, VarId> vars_;

  // ---- token plumbing -------------------------------------------------
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Next() {
    const Token& token = Peek();
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return token;
  }
  bool AtEof() const { return Peek().kind == TokenKind::kEof; }
  bool Check(TokenKind kind, size_t ahead = 0) const {
    return Peek(ahead).kind == kind;
  }
  bool Accept(TokenKind kind) {
    if (!Check(kind)) return false;
    Next();
    return true;
  }
  Status Error(const std::string& message) const {
    const Token& token = Peek();
    return Status::ParseError("line " + std::to_string(token.line) +
                              ", column " + std::to_string(token.column) +
                              ": " + message + " (found " +
                              std::string(TokenKindName(token.kind)) +
                              (token.text.empty() ? "" : " '" + token.text + "'") +
                              ")");
  }
  Status Expect(TokenKind kind, const char* what) {
    if (Accept(kind)) return Status::Ok();
    return Error("expected " + std::string(what));
  }

  bool IsFunctorIdent(const Token& token) const {
    return token.kind == TokenKind::kIdent &&
           (token.text == "ins" || token.text == "del" || token.text == "mod");
  }
  UpdateKind FunctorOf(const std::string& text) const {
    if (text == "ins") return UpdateKind::kInsert;
    if (text == "del") return UpdateKind::kDelete;
    return UpdateKind::kModify;
  }

  // ---- terms -----------------------------------------------------------
  VarId InternVar(const std::string& name) {
    auto it = vars_.find(name);
    if (it != vars_.end()) return it->second;
    VarId id(static_cast<uint32_t>(rule_->var_names.size()));
    rule_->var_names.push_back(name);
    vars_.emplace(name, id);
    return id;
  }

  /// objterm := VAR | IDENT | NUMBER | -NUMBER | STRING
  Result<ObjTerm> ParseObjTerm(bool allow_vars) {
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kVar: {
        if (!allow_vars) {
          return Status(StatusCode::kParseError,
                        "line " + std::to_string(token.line) +
                            ": variable '" + token.text +
                            "' not allowed in an object base");
        }
        Next();
        return ObjTerm::Var(InternVar(token.text));
      }
      case TokenKind::kIdent: {
        Next();
        return ObjTerm::Const(symbols_.Symbol(token.text));
      }
      case TokenKind::kString: {
        Next();
        return ObjTerm::Const(symbols_.String(token.text));
      }
      case TokenKind::kMinus:
      case TokenKind::kNumber: {
        bool negative = Accept(TokenKind::kMinus);
        if (!Check(TokenKind::kNumber)) return Error("expected a number");
        const Token& num = Next();
        VERSO_ASSIGN_OR_RETURN(Numeric value, Numeric::Parse(num.text));
        if (negative) {
          VERSO_ASSIGN_OR_RETURN(value, Numeric::Neg(value));
        }
        return ObjTerm::Const(symbols_.Number(value));
      }
      default:
        return Error("expected an object-id-term");
    }
  }

  /// vidterm := functor '(' vidterm ')' | objterm
  Result<VidTerm> ParseVidTerm(bool allow_vars) {
    if (IsFunctorIdent(Peek()) && Check(TokenKind::kLParen, 1)) {
      UpdateKind kind = FunctorOf(Next().text);
      VERSO_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
      VERSO_ASSIGN_OR_RETURN(VidTerm inner, ParseVidTerm(allow_vars));
      VERSO_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      return VidTerm::Wrap(kind, inner);
    }
    VERSO_ASSIGN_OR_RETURN(ObjTerm base, ParseObjTerm(allow_vars));
    return VidTerm::OfObj(base);
  }

  /// app := method ['@' objterm,*] '->' objterm
  /// With `mod_pair`, the result is '(' objterm ',' objterm ')' and
  /// `new_result` receives the second component.
  Status ParseApp(bool allow_vars, bool mod_pair, AppPattern* app,
                  ObjTerm* new_result) {
    if (!Check(TokenKind::kIdent)) return Error("expected a method name");
    app->method = symbols_.Method(Next().text);
    if (Accept(TokenKind::kAt)) {
      while (true) {
        VERSO_ASSIGN_OR_RETURN(ObjTerm arg, ParseObjTerm(allow_vars));
        app->args.push_back(arg);
        if (!Accept(TokenKind::kComma)) break;
      }
    }
    VERSO_RETURN_IF_ERROR(Expect(TokenKind::kArrow, "'->'"));
    if (mod_pair) {
      VERSO_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'(' (modify takes "
                                   "an (old, new) result pair)"));
      VERSO_ASSIGN_OR_RETURN(app->result, ParseObjTerm(allow_vars));
      VERSO_RETURN_IF_ERROR(Expect(TokenKind::kComma, "','"));
      VERSO_ASSIGN_OR_RETURN(*new_result, ParseObjTerm(allow_vars));
      VERSO_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    } else {
      VERSO_ASSIGN_OR_RETURN(app->result, ParseObjTerm(allow_vars));
    }
    return Status::Ok();
  }

  // ---- expressions -----------------------------------------------------
  Result<ExprId> ParseExpr() {
    VERSO_ASSIGN_OR_RETURN(ExprId lhs, ParseExprTerm());
    while (Check(TokenKind::kPlus) || Check(TokenKind::kMinus)) {
      Expr::Kind op = Next().kind == TokenKind::kPlus ? Expr::Kind::kAdd
                                                      : Expr::Kind::kSub;
      VERSO_ASSIGN_OR_RETURN(ExprId rhs, ParseExprTerm());
      lhs = rule_->exprs.Binary(op, lhs, rhs);
    }
    return lhs;
  }

  Result<ExprId> ParseExprTerm() {
    VERSO_ASSIGN_OR_RETURN(ExprId lhs, ParseExprFactor());
    while (Check(TokenKind::kStar) || Check(TokenKind::kSlash)) {
      Expr::Kind op = Next().kind == TokenKind::kStar ? Expr::Kind::kMul
                                                      : Expr::Kind::kDiv;
      VERSO_ASSIGN_OR_RETURN(ExprId rhs, ParseExprFactor());
      lhs = rule_->exprs.Binary(op, lhs, rhs);
    }
    return lhs;
  }

  Result<ExprId> ParseExprFactor() {
    if (Accept(TokenKind::kMinus)) {
      VERSO_ASSIGN_OR_RETURN(ExprId operand, ParseExprFactor());
      return rule_->exprs.Neg(operand);
    }
    if (Accept(TokenKind::kLParen)) {
      VERSO_ASSIGN_OR_RETURN(ExprId inner, ParseExpr());
      VERSO_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      return inner;
    }
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kVar: {
        Next();
        return rule_->exprs.Var(InternVar(token.text));
      }
      case TokenKind::kIdent: {
        Next();
        return rule_->exprs.Const(symbols_.Symbol(token.text));
      }
      case TokenKind::kString: {
        Next();
        return rule_->exprs.Const(symbols_.String(token.text));
      }
      case TokenKind::kNumber: {
        Next();
        VERSO_ASSIGN_OR_RETURN(Numeric value, Numeric::Parse(token.text));
        return rule_->exprs.Const(symbols_.Number(value));
      }
      default:
        return Error("expected an expression");
    }
  }

  // ---- literals ----------------------------------------------------------
  /// Scan-ahead: does a version-term literal (`vidterm '.' method ...`)
  /// start here? Distinguishes version atoms from built-in expressions
  /// without backtracking.
  bool LooksLikeVersionAtom() const {
    size_t i = 0;
    size_t open = 0;
    while (IsFunctorIdent(Peek(i)) && Check(TokenKind::kLParen, i + 1)) {
      i += 2;
      ++open;
    }
    TokenKind base = Peek(i).kind;
    if (base != TokenKind::kIdent && base != TokenKind::kVar &&
        base != TokenKind::kNumber && base != TokenKind::kString) {
      return false;
    }
    ++i;
    for (size_t k = 0; k < open; ++k) {
      if (!Check(TokenKind::kRParen, i)) return false;
      ++i;
    }
    return Check(TokenKind::kDot, i) && Check(TokenKind::kIdent, i + 1);
  }

  bool LooksLikeUpdateAtom() const {
    return IsFunctorIdent(Peek()) && Check(TokenKind::kLBracket, 1);
  }

  /// updateatom := functor '[' vidterm ']' '.' ('*' | app | modapp)
  Result<UpdateAtom> ParseUpdateAtom(bool is_head) {
    UpdateAtom atom;
    atom.kind = FunctorOf(Next().text);
    VERSO_RETURN_IF_ERROR(Expect(TokenKind::kLBracket, "'['"));
    VERSO_ASSIGN_OR_RETURN(atom.version, ParseVidTerm(/*allow_vars=*/true));
    VERSO_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "']'"));
    VERSO_RETURN_IF_ERROR(Expect(TokenKind::kDot, "'.'"));
    if (Check(TokenKind::kStar)) {
      if (!is_head) {
        return Error("'.*' (delete all) is only allowed in rule heads");
      }
      if (atom.kind != UpdateKind::kDelete) {
        return Error("'.*' requires a del[...] head");
      }
      Next();
      atom.delete_all = true;
      return atom;
    }
    VERSO_RETURN_IF_ERROR(ParseApp(/*allow_vars=*/true,
                                   atom.kind == UpdateKind::kModify,
                                   &atom.app, &atom.new_result));
    return atom;
  }

  /// Appends one parsed literal — or several, when the path shorthand
  /// `V.m1->R1/m2->R2` expands to a conjunction on the same version.
  Status ParseLiteralInto(std::vector<Literal>* body) {
    bool negated = false;
    if (Check(TokenKind::kIdent) && Peek().text == "not") {
      Next();
      negated = true;
    }
    if (LooksLikeUpdateAtom()) {
      VERSO_ASSIGN_OR_RETURN(UpdateAtom atom,
                             ParseUpdateAtom(/*is_head=*/false));
      body->push_back(Literal::Update(std::move(atom), negated));
      return Status::Ok();
    }
    if (LooksLikeVersionAtom()) {
      VERSO_ASSIGN_OR_RETURN(VidTerm version, ParseVidTerm(/*allow_vars=*/true));
      VERSO_RETURN_IF_ERROR(Expect(TokenKind::kDot, "'.'"));
      size_t count = 0;
      while (true) {
        VersionAtom atom;
        atom.version = version;
        VERSO_RETURN_IF_ERROR(ParseApp(/*allow_vars=*/true, /*mod_pair=*/false,
                                       &atom.app, nullptr));
        body->push_back(Literal::Version(std::move(atom), negated));
        ++count;
        if (!Accept(TokenKind::kSlash)) break;
      }
      if (negated && count > 1) {
        return Error("'not' over a '/'-path is ambiguous; negate each "
                     "method application separately");
      }
      return Status::Ok();
    }
    // Built-in comparison.
    VERSO_ASSIGN_OR_RETURN(ExprId lhs, ParseExpr());
    CmpOp op;
    switch (Peek().kind) {
      case TokenKind::kEq:
        op = CmpOp::kEq;
        break;
      case TokenKind::kNeq:
        op = CmpOp::kNe;
        break;
      case TokenKind::kLt:
        op = CmpOp::kLt;
        break;
      case TokenKind::kLe:
        op = CmpOp::kLe;
        break;
      case TokenKind::kGt:
        op = CmpOp::kGt;
        break;
      case TokenKind::kGe:
        op = CmpOp::kGe;
        break;
      default:
        return Error("expected a comparison operator");
    }
    Next();
    VERSO_ASSIGN_OR_RETURN(ExprId rhs, ParseExpr());
    BuiltinAtom atom;
    atom.op = op;
    atom.lhs = lhs;
    atom.rhs = rhs;
    body->push_back(Literal::Builtin(atom, negated));
    return Status::Ok();
  }

  /// rule := [label ':'] updateatom ['<-' literal,*] '.'
  Status ParseRule(Rule* rule) {
    rule_ = rule;
    vars_.clear();
    rule->source_line = Peek().line;
    if (Check(TokenKind::kIdent) && Check(TokenKind::kColon, 1) &&
        !IsFunctorIdent(Peek())) {
      rule->label = Next().text;
      Next();  // ':'
    } else if (IsFunctorIdent(Peek()) && Check(TokenKind::kColon, 1)) {
      // An ins/del/mod label would be confusing but is technically
      // allowed; require a non-functor label instead.
      return Error("rule label may not be 'ins', 'del' or 'mod'");
    }
    if (!LooksLikeUpdateAtom()) {
      return Error(
          "expected an update-term head (ins[...], del[...] or mod[...]); "
          "plain facts belong in object-base files");
    }
    VERSO_ASSIGN_OR_RETURN(rule->head, ParseUpdateAtom(/*is_head=*/true));
    if (Accept(TokenKind::kImplies)) {
      while (true) {
        VERSO_RETURN_IF_ERROR(ParseLiteralInto(&rule->body));
        if (!Accept(TokenKind::kComma)) break;
      }
    }
    VERSO_RETURN_IF_ERROR(Expect(TokenKind::kDot, "'.' at end of rule"));
    rule_ = nullptr;
    return Status::Ok();
  }

  /// derivedrule := [label ':'] 'derive' vidterm '.' app ['<-' literal,*] '.'
  /// The head version-term is wrapped into an ins-update head; the query
  /// evaluator treats it as a direct fact definition.
  Status ParseDerivedRule(Rule* rule) {
    rule_ = rule;
    vars_.clear();
    rule->source_line = Peek().line;
    if (Check(TokenKind::kIdent) && Check(TokenKind::kColon, 1)) {
      rule->label = Next().text;
      Next();  // ':'
    }
    if (!(Check(TokenKind::kIdent) && Peek().text == "derive")) {
      return Error("expected 'derive' at the start of a derived-method rule");
    }
    Next();
    rule->head.kind = UpdateKind::kInsert;
    VERSO_ASSIGN_OR_RETURN(rule->head.version,
                           ParseVidTerm(/*allow_vars=*/true));
    VERSO_RETURN_IF_ERROR(Expect(TokenKind::kDot, "'.'"));
    VERSO_RETURN_IF_ERROR(ParseApp(/*allow_vars=*/true, /*mod_pair=*/false,
                                   &rule->head.app, nullptr));
    if (Accept(TokenKind::kImplies)) {
      while (true) {
        VERSO_RETURN_IF_ERROR(ParseLiteralInto(&rule->body));
        if (!Accept(TokenKind::kComma)) break;
      }
    }
    // Derived rules read methods; they never perform updates.
    for (const Literal& literal : rule->body) {
      if (literal.kind == Literal::Kind::kUpdate) {
        return Error("update-terms are not allowed in derived-method rules");
      }
    }
    VERSO_RETURN_IF_ERROR(Expect(TokenKind::kDot, "'.' at end of rule"));
    rule_ = nullptr;
    return Status::Ok();
  }

  /// fact := vidterm '.' app ('/' app)* '.'   (ground)
  Status ParseFactClause(VersionTable& versions, ObjectBase& base) {
    // Ground fact parsing borrows the rule machinery with vars forbidden;
    // a throwaway Rule provides the expression pool slot.
    Rule scratch;
    rule_ = &scratch;
    vars_.clear();
    VERSO_ASSIGN_OR_RETURN(VidTerm version, ParseVidTerm(/*allow_vars=*/false));
    VERSO_RETURN_IF_ERROR(Expect(TokenKind::kDot, "'.'"));
    Vid vid = versions.OfOid(version.base.oid);
    for (auto it = version.ops.rbegin(); it != version.ops.rend(); ++it) {
      vid = versions.Child(vid, *it);
    }
    while (true) {
      AppPattern app;
      VERSO_RETURN_IF_ERROR(ParseApp(/*allow_vars=*/false, /*mod_pair=*/false,
                                     &app, nullptr));
      GroundApp ground;
      ground.args.reserve(app.args.size());
      for (const ObjTerm& arg : app.args) ground.args.push_back(arg.oid);
      ground.result = app.result.oid;
      base.Insert(vid, app.method, std::move(ground));
      if (!Accept(TokenKind::kSlash)) break;
    }
    VERSO_RETURN_IF_ERROR(Expect(TokenKind::kDot, "'.' at end of fact"));
    rule_ = nullptr;
    return Status::Ok();
  }
};

}  // namespace

Result<Program> ParseProgram(std::string_view source, SymbolTable& symbols) {
  VERSO_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  ParserImpl parser(std::move(tokens), symbols);
  return parser.ParseProgramFile();
}

Status ParseObjectBaseInto(std::string_view source, SymbolTable& symbols,
                           VersionTable& versions, ObjectBase& base) {
  VERSO_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  ParserImpl parser(std::move(tokens), symbols);
  return parser.ParseObjectBaseFile(versions, base);
}

Result<Program> ParseProgram(std::string_view source, Engine& engine) {
  return ParseProgram(source, engine.symbols());
}

Result<Program> ParseDerivedRules(std::string_view source,
                                  SymbolTable& symbols) {
  VERSO_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  ParserImpl parser(std::move(tokens), symbols);
  return parser.ParseDerivedRulesFile();
}

Result<ObjectBase> ParseObjectBase(std::string_view source, Engine& engine) {
  ObjectBase base = engine.MakeBase();
  VERSO_RETURN_IF_ERROR(ParseObjectBaseInto(source, engine.symbols(),
                                            engine.versions(), base));
  return base;
}

}  // namespace verso
