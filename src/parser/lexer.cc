#include "parser/lexer.h"

#include <cctype>

namespace verso {

std::string_view TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof:
      return "end of input";
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kVar:
      return "variable";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kString:
      return "string";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kArrow:
      return "'->'";
    case TokenKind::kImplies:
      return "'<-'";
    case TokenKind::kAt:
      return "'@'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNeq:
      return "'!='";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kColon:
      return "':'";
  }
  return "?";
}

namespace {

bool IsIdentStart(char c) {
  return std::islower(static_cast<unsigned char>(c));
}
bool IsVarStart(char c) {
  return std::isupper(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentBody(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Lex(std::string_view source) {
  std::vector<Token> tokens;
  size_t pos = 0;
  int line = 1;
  int column = 1;

  auto advance = [&](size_t n) {
    for (size_t i = 0; i < n; ++i) {
      if (source[pos] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
      ++pos;
    }
  };
  auto push = [&](TokenKind kind, std::string text, int tl, int tc) {
    Token token;
    token.kind = kind;
    token.text = std::move(text);
    token.line = tl;
    token.column = tc;
    tokens.push_back(std::move(token));
  };

  while (pos < source.size()) {
    char c = source[pos];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    if (c == '%') {
      while (pos < source.size() && source[pos] != '\n') advance(1);
      continue;
    }
    int tl = line;
    int tc = column;
    if (IsIdentStart(c) || IsVarStart(c)) {
      size_t start = pos;
      while (pos < source.size() && IsIdentBody(source[pos])) advance(1);
      std::string text(source.substr(start, pos - start));
      push(IsIdentStart(c) ? TokenKind::kIdent : TokenKind::kVar,
           std::move(text), tl, tc);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos;
      while (pos < source.size() &&
             std::isdigit(static_cast<unsigned char>(source[pos]))) {
        advance(1);
      }
      // A '.' is part of the number only when followed by a digit, so
      // "250." lexes as the number 250 and a clause-terminating dot.
      if (pos + 1 < source.size() && source[pos] == '.' &&
          std::isdigit(static_cast<unsigned char>(source[pos + 1]))) {
        advance(1);
        while (pos < source.size() &&
               std::isdigit(static_cast<unsigned char>(source[pos]))) {
          advance(1);
        }
      }
      push(TokenKind::kNumber, std::string(source.substr(start, pos - start)),
           tl, tc);
      continue;
    }
    if (c == '"') {
      advance(1);
      std::string text;
      bool closed = false;
      while (pos < source.size()) {
        char d = source[pos];
        if (d == '"') {
          advance(1);
          closed = true;
          break;
        }
        if (d == '\\' && pos + 1 < source.size()) {
          char e = source[pos + 1];
          text += (e == 'n') ? '\n' : (e == 't') ? '\t' : e;
          advance(2);
          continue;
        }
        if (d == '\n') break;
        text += d;
        advance(1);
      }
      if (!closed) {
        return Status::ParseError("line " + std::to_string(tl) +
                                  ": unterminated string literal");
      }
      push(TokenKind::kString, std::move(text), tl, tc);
      continue;
    }

    auto two = [&](char second) {
      return pos + 1 < source.size() && source[pos + 1] == second;
    };
    switch (c) {
      case '.':
        push(TokenKind::kDot, ".", tl, tc);
        advance(1);
        continue;
      case ',':
        push(TokenKind::kComma, ",", tl, tc);
        advance(1);
        continue;
      case '(':
        push(TokenKind::kLParen, "(", tl, tc);
        advance(1);
        continue;
      case ')':
        push(TokenKind::kRParen, ")", tl, tc);
        advance(1);
        continue;
      case '[':
        push(TokenKind::kLBracket, "[", tl, tc);
        advance(1);
        continue;
      case ']':
        push(TokenKind::kRBracket, "]", tl, tc);
        advance(1);
        continue;
      case '@':
        push(TokenKind::kAt, "@", tl, tc);
        advance(1);
        continue;
      case '*':
        push(TokenKind::kStar, "*", tl, tc);
        advance(1);
        continue;
      case '/':
        push(TokenKind::kSlash, "/", tl, tc);
        advance(1);
        continue;
      case '+':
        push(TokenKind::kPlus, "+", tl, tc);
        advance(1);
        continue;
      case '-':
        if (two('>')) {
          push(TokenKind::kArrow, "->", tl, tc);
          advance(2);
        } else {
          push(TokenKind::kMinus, "-", tl, tc);
          advance(1);
        }
        continue;
      case '<':
        if (two('-')) {
          push(TokenKind::kImplies, "<-", tl, tc);
          advance(2);
        } else if (two('=')) {
          push(TokenKind::kLe, "<=", tl, tc);
          advance(2);
        } else {
          push(TokenKind::kLt, "<", tl, tc);
          advance(1);
        }
        continue;
      case '>':
        if (two('=')) {
          push(TokenKind::kGe, ">=", tl, tc);
          advance(2);
        } else {
          push(TokenKind::kGt, ">", tl, tc);
          advance(1);
        }
        continue;
      case '=':
        push(TokenKind::kEq, "=", tl, tc);
        advance(1);
        continue;
      case '!':
        if (two('=')) {
          push(TokenKind::kNeq, "!=", tl, tc);
          advance(2);
          continue;
        }
        return Status::ParseError("line " + std::to_string(tl) +
                                  ": stray '!' (did you mean '!='?)");
      case ':':
        push(TokenKind::kColon, ":", tl, tc);
        advance(1);
        continue;
      default:
        return Status::ParseError("line " + std::to_string(tl) + ", column " +
                                  std::to_string(tc) +
                                  ": unexpected character '" +
                                  std::string(1, c) + "'");
    }
  }
  push(TokenKind::kEof, "", line, column);
  return tokens;
}

}  // namespace verso
