#ifndef VERSO_PARSER_PARSER_H_
#define VERSO_PARSER_PARSER_H_

#include <string_view>

#include "core/engine.h"
#include "core/object_base.h"
#include "core/program.h"
#include "core/symbol_table.h"
#include "core/version_table.h"
#include "util/result.h"

namespace verso {

/// Parses an update-program (.vup syntax):
///
///     % Each employee in a managerial position gets 10% + 200.
///     rule1: mod[E].sal -> (S, S2) <-
///         E.isa -> empl / pos -> mgr / sal -> S,
///         S2 = S * 1.1 + 200.
///     rule3: del[mod(E)].* <-
///         mod(E).isa -> empl / boss -> B / sal -> SE,
///         mod(B).isa -> empl / sal -> SB,
///         SE > SB.
///     rule4: ins[mod(E)].isa -> hpe <-
///         mod(E).isa -> empl / sal -> S, S > 4500,
///         not del[mod(E)].isa -> empl.
///
/// Heads are update-terms (`label:` prefixes are optional); bodies are
/// comma-separated literals; `V.m1->R1/m2->R2` abbreviates a conjunction
/// on the same version; `not` negates one literal; built-ins compare
/// arithmetic expressions over exact rationals. Clauses end with '.'.
Result<Program> ParseProgram(std::string_view source, SymbolTable& symbols);

/// Parses an object base (.vob syntax): ground facts like
///
///     phil.isa -> empl.  phil.pos -> mgr.  phil.sal -> 4000.
///     bob.isa -> empl / boss -> phil / sal -> 4200.
///
/// Versioned facts (e.g. `mod(phil).sal -> 4600.`) are accepted, so
/// printed result(P) bases round-trip. Variables are rejected.
Status ParseObjectBaseInto(std::string_view source, SymbolTable& symbols,
                           VersionTable& versions, ObjectBase& base);

/// Engine-bound conveniences.
Result<Program> ParseProgram(std::string_view source, Engine& engine);
Result<ObjectBase> ParseObjectBase(std::string_view source, Engine& engine);

/// Parses derived-method rules (the query layer's surface syntax):
///
///     derive X.reaches -> Y <- X.edge -> Y.
///     derive X.reaches -> Z <- X.reaches -> Y, Y.edge -> Z.
///
/// Each head is a single version-term; the returned rules carry it as an
/// ins-update head (the query evaluator inserts facts directly into the
/// head's version instead of creating an ins(...) version).
Result<Program> ParseDerivedRules(std::string_view source,
                                  SymbolTable& symbols);

}  // namespace verso

#endif  // VERSO_PARSER_PARSER_H_
