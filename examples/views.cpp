// Materialized views walk-through: create derived-method programs as
// named views over a persistent connection, run update-programs, and
// read the incrementally maintained results — no recomputation.
//
// Demonstrates: CREATE VIEW / QUERY statements, counting vs DRed strata,
// view stats, and the OnViewMaintenance trace event, all through the
// client API.

#include <cstdio>
#include <filesystem>
#include <iostream>

#include "api/api.h"
#include "core/trace.h"

namespace {

bool Holds(verso::Session& session, const char* view, const char* object,
           const char* method, const char* result) {
  verso::Result<verso::ResultSet> rs =
      session.Execute(std::string("QUERY ") + view);
  if (!rs.ok()) return false;
  while (rs->Next()) {
    if (rs->object() == object && rs->method() == method &&
        rs->result_text() == result) {
      return true;
    }
  }
  return false;
}

}  // namespace

int main() {
  std::string dir = std::filesystem::temp_directory_path() / "verso_views";
  std::filesystem::remove_all(dir);

  verso::Result<std::unique_ptr<verso::Connection>> conn =
      verso::Connection::Open(dir);
  if (!conn.ok()) {
    std::cerr << conn.status().ToString() << "\n";
    return 1;
  }

  // A small org chart.
  verso::Status loaded = (*conn)->ImportText(R"(
      ann.isa -> empl.   ann.boss -> bob.   ann.sal -> 2000.
      bob.isa -> empl.   bob.boss -> eve.   bob.sal -> 6000.
      eve.isa -> empl.   eve.sal -> 9000.
  )");
  if (!loaded.ok()) {
    std::cerr << loaded.ToString() << "\n";
    return 1;
  }

  // Trace view maintenance to stdout.
  verso::StreamTrace trace(std::cout, (*conn)->engine().symbols(),
                           (*conn)->engine().versions());
  (*conn)->SetTrace(&trace);

  // Two views: `rich` is a single counting stratum (built-in
  // comparison), `chain` is a recursive stratum maintained with
  // delete-and-rederive. From CREATE VIEW on, every committed
  // transaction maintains both.
  std::unique_ptr<verso::Session> session = (*conn)->OpenSession();
  verso::Result<verso::ResultSet> ddl = session->Execute(
      "CREATE VIEW rich AS "
      "q: derive X.rich -> yes <- X.sal -> S, S > 5000.");
  if (!ddl.ok()) {
    std::cerr << ddl.status().ToString() << "\n";
    return 1;
  }
  ddl = session->Execute(
      "CREATE VIEW chain AS "
      "q1: derive X.chain -> Y <- X.boss -> Y."
      "q2: derive X.chain -> Z <- X.chain -> Y, Y.boss -> Z.");
  if (!ddl.ok()) {
    std::cerr << ddl.status().ToString() << "\n";
    return 1;
  }

  std::printf("ann.chain -> eve initially: %s\n",
              Holds(*session, "chain", "ann", "chain", "eve") ? "yes"
                                                              : "no");

  // Transaction 1: ann is promoted to report directly to eve.
  verso::Result<verso::ResultSet> t1 =
      session->Execute("t: mod[ann].boss -> (bob, eve).");
  if (!t1.ok()) return 1;

  // Transaction 2: ann gets a big raise (crosses the `rich` bar).
  verso::Result<verso::ResultSet> t2 = session->Execute(
      "t: mod[ann].sal -> (S, S2) <- ann.sal -> S, S2 = S * 4.");
  if (!t2.ok()) return 1;

  std::printf("ann.chain -> bob after promotion: %s\n",
              Holds(*session, "chain", "ann", "chain", "bob") ? "yes"
                                                              : "no");
  std::printf("ann.rich after the raise: %s\n",
              Holds(*session, "rich", "ann", "rich", "yes") ? "yes" : "no");

  verso::Result<verso::ViewStats> stats = (*conn)->GetViewStats("chain");
  if (!stats.ok()) return 1;
  std::printf(
      "chain view: %llu maintenance runs, +%llu/-%llu facts, "
      "%llu overdeleted, %llu rederived\n",
      static_cast<unsigned long long>(stats->maintenance_runs),
      static_cast<unsigned long long>(stats->facts_added),
      static_cast<unsigned long long>(stats->facts_removed),
      static_cast<unsigned long long>(stats->overdeleted),
      static_cast<unsigned long long>(stats->rederived));
  return 0;
}
