// Materialized views walk-through: register derived-method programs as
// named views over a persistent database, run update-programs, and read
// the incrementally maintained results — no recomputation.
//
// Demonstrates: ViewCatalog, MaterializedView, the Database commit
// observer hook, counting vs DRed strata, ViewStats, and the
// OnViewMaintenance trace event.

#include <cstdio>
#include <filesystem>
#include <iostream>

#include "core/engine.h"
#include "core/pretty.h"
#include "parser/parser.h"
#include "storage/database.h"
#include "views/catalog.h"

namespace {

bool Holds(verso::Engine& engine, const verso::ObjectBase& base,
           const char* object, const char* method, const char* result) {
  verso::Vid vid =
      engine.versions().OfOid(engine.symbols().Symbol(object));
  verso::GroundApp app;
  app.result = engine.symbols().Symbol(result);
  return base.Contains(vid, engine.symbols().Method(method), app);
}

}  // namespace

int main() {
  verso::Engine engine;
  std::string dir = std::filesystem::temp_directory_path() / "verso_views";
  std::filesystem::remove_all(dir);

  verso::Result<std::unique_ptr<verso::Database>> db =
      verso::Database::Open(dir, engine);
  if (!db.ok()) {
    std::cerr << db.status().ToString() << "\n";
    return 1;
  }

  // A small org chart.
  verso::Result<verso::ObjectBase> base = verso::ParseObjectBase(R"(
      ann.isa -> empl.   ann.boss -> bob.   ann.sal -> 2000.
      bob.isa -> empl.   bob.boss -> eve.   bob.sal -> 6000.
      eve.isa -> empl.   eve.sal -> 9000.
  )", engine);
  if (!base.ok() || !(*db)->ImportBase(*base).ok()) return 1;

  // Register two views: `rich` is a single counting stratum (built-in
  // comparison), `chain` is a recursive stratum maintained with
  // delete-and-rederive.
  verso::StreamTrace trace(std::cout, engine.symbols(), engine.versions());
  verso::ViewCatalog catalog(engine, &trace);
  verso::Status s = catalog.RegisterText(
      "rich", "q: derive X.rich -> yes <- X.sal -> S, S > 5000.",
      (*db)->current());
  if (!s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  s = catalog.RegisterText(
      "chain",
      "q1: derive X.chain -> Y <- X.boss -> Y."
      "q2: derive X.chain -> Z <- X.chain -> Y, Y.boss -> Z.",
      (*db)->current());
  if (!s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }

  // From here on, every committed transaction maintains both views.
  catalog.Attach(**db);

  const verso::MaterializedView* chain = catalog.Find("chain");
  const verso::MaterializedView* rich = catalog.Find("rich");
  std::printf("ann.chain -> eve initially: %s\n",
              Holds(engine, chain->result(), "ann", "chain", "eve")
                  ? "yes" : "no");

  // Transaction 1: ann is promoted to report directly to eve.
  verso::Result<verso::Program> promote = verso::ParseProgram(
      "t: mod[ann].boss -> (bob, eve).", engine);
  if (!promote.ok() || !(*db)->Execute(*promote).ok()) return 1;

  // Transaction 2: ann gets a big raise (crosses the `rich` bar).
  verso::Result<verso::Program> raise = verso::ParseProgram(
      "t: mod[ann].sal -> (S, S2) <- ann.sal -> S, S2 = S * 4.", engine);
  if (!raise.ok() || !(*db)->Execute(*raise).ok()) return 1;

  std::printf("ann.chain -> bob after promotion: %s\n",
              Holds(engine, chain->result(), "ann", "chain", "bob")
                  ? "yes" : "no");
  std::printf("ann.rich after the raise: %s\n",
              Holds(engine, rich->result(), "ann", "rich", "yes")
                  ? "yes" : "no");

  const verso::ViewStats& stats = chain->stats();
  std::printf(
      "chain view: %llu maintenance runs, +%llu/-%llu facts, "
      "%llu overdeleted, %llu rederived\n",
      static_cast<unsigned long long>(stats.maintenance_runs),
      static_cast<unsigned long long>(stats.facts_added),
      static_cast<unsigned long long>(stats.facts_removed),
      static_cast<unsigned long long>(stats.overdeleted),
      static_cast<unsigned long long>(stats.rederived));
  return 0;
}
