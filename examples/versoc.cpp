// versoc — command-line driver for verso update-programs, built on the
// client API (an in-memory Connection/Session per run).
//
// Usage:
//   versoc <object-base.vob> <program.vup> [options]
//
// Options:
//   --trace            print the update-process (rule firings, copies)
//   --strata           print the stratification (Section 4)
//   --result           print result(P) — all object versions — not ob'
//   --stats            print evaluation statistics
//   --history          print per-object version histories with diffs
//   --schema <file>    validate base and program against a schema file
//
// Prints the updated object base ob' (canonical, sorted) to stdout.

#include <cstring>
#include <iostream>
#include <string>

#include "api/api.h"
#include "core/pretty.h"
#include "core/trace.h"
#include "history/history.h"
#include "schema/schema.h"
#include "util/io.h"

namespace {

int Usage() {
  std::cerr
      << "usage: versoc <object-base.vob> <program.vup> "
         "[--trace] [--strata] [--result] [--stats] [--history] "
         "[--schema <file>]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::string base_path = argv[1];
  std::string program_path = argv[2];
  bool want_trace = false;
  bool want_strata = false;
  bool want_result = false;
  bool want_stats = false;
  bool want_history = false;
  std::string schema_path;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      want_trace = true;
    } else if (std::strcmp(argv[i], "--strata") == 0) {
      want_strata = true;
    } else if (std::strcmp(argv[i], "--result") == 0) {
      want_result = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      want_stats = true;
    } else if (std::strcmp(argv[i], "--history") == 0) {
      want_history = true;
    } else if (std::strcmp(argv[i], "--schema") == 0 && i + 1 < argc) {
      schema_path = argv[++i];
    } else {
      return Usage();
    }
  }

  verso::Result<std::unique_ptr<verso::Connection>> conn =
      verso::Connection::OpenInMemory();
  if (!conn.ok()) {
    std::cerr << conn.status().ToString() << "\n";
    return 1;
  }
  const verso::SymbolTable& symbols = (*conn)->symbols();
  const verso::VersionTable& versions = (*conn)->versions();

  verso::Result<std::string> base_text = verso::ReadFile(base_path);
  if (!base_text.ok()) {
    std::cerr << base_text.status().ToString() << "\n";
    return 1;
  }
  verso::Status imported = (*conn)->ImportText(*base_text);
  if (!imported.ok()) {
    std::cerr << base_path << ": " << imported.ToString() << "\n";
    return 1;
  }

  verso::Result<std::string> program_text = verso::ReadFile(program_path);
  if (!program_text.ok()) {
    std::cerr << program_text.status().ToString() << "\n";
    return 1;
  }
  std::unique_ptr<verso::Session> session = (*conn)->OpenSession();
  verso::Result<verso::Statement> stmt = session->Prepare(*program_text);
  if (!stmt.ok()) {
    std::cerr << program_path << ": " << stmt.status().ToString() << "\n";
    return 1;
  }

  verso::Schema schema;
  if (!schema_path.empty()) {
    verso::Result<std::string> schema_text = verso::ReadFile(schema_path);
    if (!schema_text.ok()) {
      std::cerr << schema_text.status().ToString() << "\n";
      return 1;
    }
    verso::Result<verso::Schema> parsed =
        verso::Schema::Parse(*schema_text, (*conn)->engine().symbols());
    if (!parsed.ok()) {
      std::cerr << schema_path << ": " << parsed.status().ToString() << "\n";
      return 1;
    }
    schema = std::move(parsed).value();
    verso::Status base_check = schema.CheckBase(
        session->base(), (*conn)->engine().symbols(),
        (*conn)->engine().versions());
    if (!base_check.ok()) {
      std::cerr << base_path << ": " << base_check.ToString() << "\n";
      return 1;
    }
    verso::Status program_check =
        schema.CheckProgram(stmt->program(), (*conn)->engine().symbols());
    if (!program_check.ok()) {
      std::cerr << program_path << ": " << program_check.ToString() << "\n";
      return 1;
    }
  }

  verso::StreamTrace trace(std::cerr, (*conn)->engine().symbols(),
                           (*conn)->engine().versions());
  if (want_trace) (*conn)->SetTrace(&trace);

  verso::Result<verso::ResultSet> rs = stmt->Execute();
  if (!rs.ok()) {
    std::cerr << rs.status().ToString() << "\n";
    return 1;
  }
  if (!schema_path.empty()) {
    verso::Status post_check = schema.CheckBase(
        session->base(), (*conn)->engine().symbols(),
        (*conn)->engine().versions());
    if (!post_check.ok()) {
      std::cerr << "post-update schema violation: " << post_check.ToString()
                << "\n";
      return 1;
    }
  }
  if (want_history) {
    verso::Result<std::vector<verso::ObjectHistory>> histories =
        AllHistories(*rs->update_result(), symbols, versions);
    if (histories.ok()) {
      for (const verso::ObjectHistory& history : *histories) {
        std::cerr << HistoryToString(history, symbols, versions);
      }
    }
  }

  if (want_strata) {
    std::cerr << StratificationToString(*rs->stratification(),
                                        stmt->program());
  }
  if (want_stats) {
    const verso::EvalStats& stats = *rs->eval_stats();
    std::cerr << "strata=" << rs->stratification()->stratum_count()
              << " rounds=" << stats.total_rounds()
              << " updates=" << stats.total_t1_updates()
              << " versions=" << stats.versions_materialized << "\n";
  }
  const verso::ObjectBase& to_print =
      want_result ? *rs->update_result() : session->base();
  std::cout << ObjectBaseToString(to_print, symbols, versions);
  return 0;
}
