// Quickstart: the smallest end-to-end use of the verso public API.
//
// Builds a two-employee object base, runs the paper's Section 2.1 salary
// raise (10% for every employee), and prints the updated object base.
// Demonstrates: Engine, object-base construction, parsing an
// update-program, running it, and reading results back.

#include <cstdio>
#include <iostream>

#include "core/engine.h"
#include "core/pretty.h"
#include "parser/parser.h"

int main() {
  verso::Engine engine;

  // An object base can be assembled programmatically ...
  verso::ObjectBase base = engine.MakeBase();
  engine.AddFact(base, "henry", "isa", "empl");
  engine.AddFact(base, "henry", "salary", int64_t{250});

  // ... or parsed from the textual .vob syntax.
  verso::Result<verso::ObjectBase> parsed = verso::ParseObjectBase(
      "mary.isa -> empl.  mary.salary -> 1000.", engine);
  if (!parsed.ok()) {
    std::cerr << parsed.status().ToString() << "\n";
    return 1;
  }
  for (const auto& [vid, state] : parsed->versions()) {
    for (const auto& [method, apps] : state.methods()) {
      for (const verso::GroundApp& app : apps) base.Insert(vid, method, app);
    }
  }

  // The update-program: one rule, exactly the paper's first example.
  // Versioning makes it terminate: the rule only applies to not-yet-
  // updated employees E (a variable ranges over OIDs, never VIDs).
  verso::Result<verso::Program> program = verso::ParseProgram(R"(
      raise: mod[E].salary -> (S, S2) <-
          E.isa -> empl, E.salary -> S, S2 = S * 1.1.
  )", engine);
  if (!program.ok()) {
    std::cerr << program.status().ToString() << "\n";
    return 1;
  }

  verso::Result<verso::RunOutcome> outcome = engine.Run(*program, base);
  if (!outcome.ok()) {
    std::cerr << outcome.status().ToString() << "\n";
    return 1;
  }

  std::cout << "== input object base ==\n"
            << ObjectBaseToString(base, engine.symbols(), engine.versions())
            << "\n== updated object base (ob') ==\n"
            << ObjectBaseToString(outcome->new_base, engine.symbols(),
                                  engine.versions());

  std::cout << "\nstrata: " << outcome->stratification.stratum_count()
            << ", rounds: " << outcome->stats.total_rounds()
            << ", updates derived: " << outcome->stats.total_t1_updates()
            << ", versions materialized: "
            << outcome->stats.versions_materialized << "\n";

  // Note 250 * 1.1 == exactly 275: verso arithmetic is exact rationals.
  return 0;
}
