// Quickstart: the smallest end-to-end use of the verso client API.
//
// Opens an in-memory connection, loads a two-employee object base, runs
// the paper's Section 2.1 salary raise (10% for every employee) as one
// transaction, and walks the committed delta through the ResultSet
// cursor. Demonstrates: Connection, Session, Execute, ResultSet.

#include <iostream>

#include "api/api.h"
#include "core/pretty.h"

int main() {
  verso::Result<std::unique_ptr<verso::Connection>> conn =
      verso::Connection::OpenInMemory();
  if (!conn.ok()) {
    std::cerr << conn.status().ToString() << "\n";
    return 1;
  }

  // Load the object base (textual .vob syntax) as the first transaction.
  verso::Status loaded = (*conn)->ImportText(R"(
      henry.isa -> empl.  henry.salary -> 250.
      mary.isa -> empl.   mary.salary -> 1000.
  )");
  if (!loaded.ok()) {
    std::cerr << loaded.ToString() << "\n";
    return 1;
  }

  verso::ObjectBase before = (*conn)->OpenSession()->base();

  // The update-program: one rule, exactly the paper's first example.
  // Versioning makes it terminate: the rule only applies to not-yet-
  // updated employees E (a variable ranges over OIDs, never VIDs).
  std::unique_ptr<verso::Session> session = (*conn)->OpenSession();
  verso::Result<verso::ResultSet> rs = session->Execute(R"(
      raise: mod[E].salary -> (S, S2) <-
          E.isa -> empl, E.salary -> S, S2 = S * 1.1.
  )");
  if (!rs.ok()) {
    std::cerr << rs.status().ToString() << "\n";
    return 1;
  }

  std::cout << "== input object base ==\n"
            << ObjectBaseToString(before, (*conn)->symbols(),
                                  (*conn)->versions())
            << "\n== committed delta (epoch " << rs->epoch() << ") ==\n";
  while (rs->Next()) {
    std::cout << (rs->added() ? "+ " : "- ") << rs->RowToString() << "\n";
  }

  // The session re-pinned to its own commit: base() is the new state.
  std::cout << "\n== updated object base (ob') ==\n"
            << ObjectBaseToString(session->base(), (*conn)->symbols(),
                                  (*conn)->versions());

  const verso::EvalStats& stats = *rs->eval_stats();
  std::cout << "\nstrata: " << rs->stratification()->stratum_count()
            << ", rounds: " << stats.total_rounds()
            << ", updates derived: " << stats.total_t1_updates()
            << ", versions materialized: " << stats.versions_materialized
            << "\n";

  // Note 250 * 1.1 == exactly 275: verso arithmetic is exact rationals.
  return 0;
}
