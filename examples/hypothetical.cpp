// Hypothetical reasoning (paper Section 2.3, Example 2): "would peter be
// the richest employee after a (non-linear) salary raise?"
//
// The raise is performed on version mod(e) and *revised right away* on
// mod(mod(e)); the answer is derived from the middle (hypothetical)
// versions while the committed object base keeps the original salaries.
// Demonstrates querying result(P) — the ResultSet's update_result() —
// for intermediate versions through the client API.

#include <iostream>

#include "api/api.h"
#include "core/pretty.h"

int main() {
  verso::Result<std::unique_ptr<verso::Connection>> conn =
      verso::Connection::OpenInMemory();
  if (!conn.ok()) {
    std::cerr << conn.status().ToString() << "\n";
    return 1;
  }
  verso::Status loaded = (*conn)->ImportText(R"(
      peter.isa -> empl.  peter.sal -> 100.  peter.factor -> 3.
      anna.isa -> empl.   anna.sal -> 200.   anna.factor -> 1.
      felix.isa -> empl.  felix.sal -> 120.  felix.factor -> 2.
  )");
  if (!loaded.ok()) {
    std::cerr << loaded.ToString() << "\n";
    return 1;
  }

  std::unique_ptr<verso::Session> session = (*conn)->OpenSession();
  verso::Result<verso::ResultSet> rs = session->Execute(R"(
      % r1: the hypothetical (non-linear) raise ...
      r1: mod[E].sal -> (S, S2) <- E.sal -> S / factor -> F, S2 = S * F.
      % r2: ... revised right away: mod(mod(e)) equals the e-version again.
      r2: mod[mod(E)].sal -> (S2, S) <- mod(E).sal -> S2, E.sal -> S.
      % r3/r4: answer `richest` from the middle version.
      r3: ins[mod(mod(peter))].richest -> no <-
          mod(E).sal -> SE, mod(peter).sal -> SP, SE > SP.
      r4: ins[ins(mod(mod(peter)))].richest -> yes <-
          not ins(mod(mod(peter))).richest -> no.
  )");
  if (!rs.ok()) {
    std::cerr << rs.status().ToString() << "\n";
    return 1;
  }

  // Inspect the hypothetical stage directly in result(P): mod(peter)
  // carries the raised salary, mod(mod(peter)) the restored one. The
  // engine accessor is the advanced path for handle-level lookups.
  const verso::ObjectBase& result = *rs->update_result();
  verso::SymbolTable& sym = (*conn)->engine().symbols();
  verso::VersionTable& ver = (*conn)->engine().versions();
  verso::Vid peter = ver.OfOid(sym.Symbol("peter"));
  verso::Vid mod_peter = ver.Child(peter, verso::UpdateKind::kModify);

  auto salary_of = [&](verso::Vid vid) -> std::string {
    const verso::VersionState* state = result.StateOf(vid);
    if (state == nullptr) return "<no version>";
    const std::vector<verso::GroundApp>* apps =
        state->Find(sym.FindMethod("sal"));
    if (apps == nullptr || apps->empty()) return "<no sal>";
    return sym.OidToString(apps->front().result);
  };

  std::cout << "peter's salary, hypothetically raised (mod(peter)):   "
            << salary_of(mod_peter) << "\n"
            << "peter's salary, revised (mod(mod(peter))):            "
            << salary_of(ver.Child(mod_peter, verso::UpdateKind::kModify))
            << "\n\n== committed object base (raises revised away) ==\n"
            << ObjectBaseToString(session->base(), sym, ver);
  return 0;
}
