// The running example of the paper (Section 2.3, Example 1 / Figure 2):
//
//   "Each employee gets a 10% salary-raise and those in a managerial
//    position an extra $200. Afterwards all those employees are fired,
//    who make more than any of their superiors, and finally those of the
//    remaining ones, who make more than $4500, are grouped into a class
//    called hpe (high-paid-employees)."
//
// Runs the four update-rules on phil ($4000, manager) and bob ($4200,
// phil's subordinate) through the client API with a full process trace —
// the programmatic equivalent of Figure 2 — and prints the strata of
// Section 4 using the ResultSet's write introspection (stratification,
// result(P), per-object histories).

#include <iostream>

#include "api/api.h"
#include "core/pretty.h"
#include "core/trace.h"
#include "history/history.h"

namespace {

constexpr const char* kProgram = R"(
% (rule1) managers: 10% raise plus $200.
rule1: mod[E].sal -> (S, S2) <-
    E.isa -> empl / pos -> mgr / sal -> S,
    S2 = S * 1.1 + 200.

% (rule2) everyone else: 10% raise.
rule2: mod[E].sal -> (S, S2) <-
    E.isa -> empl / sal -> S,
    not E.pos -> mgr,
    S2 = S * 1.1.

% (rule3) fire employees who out-earn a superior -- on the *modified*
% versions, so the comparison uses the raised salaries.
rule3: del[mod(E)].* <-
    mod(E).isa -> empl / boss -> B / sal -> SE,
    mod(B).isa -> empl / sal -> SB,
    SE > SB.

% (rule4) group survivors above $4500 into hpe. The negated UPDATE-term
% asks "was no delete performed on mod(E)?" -- a negated version-term
% would not have the same effect (footnote 2 of the paper).
rule4: ins[mod(E)].isa -> hpe <-
    mod(E).isa -> empl / sal -> S,
    S > 4500,
    not del[mod(E)].isa -> empl.
)";

constexpr const char* kBase = R"(
phil.isa -> empl.  phil.pos -> mgr.   phil.sal -> 4000.
bob.isa -> empl.   bob.boss -> phil.  bob.sal -> 4200.
)";

}  // namespace

int main() {
  verso::Result<std::unique_ptr<verso::Connection>> conn =
      verso::Connection::OpenInMemory();
  if (!conn.ok()) {
    std::cerr << conn.status().ToString() << "\n";
    return 1;
  }
  if (!(*conn)->ImportText(kBase).ok()) return 1;

  // The trace sink renders through the connection's own tables and
  // observes every later transaction — Figure 2 as a live stream.
  verso::StreamTrace trace(std::cout, (*conn)->engine().symbols(),
                           (*conn)->engine().versions());
  (*conn)->SetTrace(&trace);

  std::unique_ptr<verso::Session> session = (*conn)->OpenSession();
  verso::Result<verso::Statement> stmt = session->Prepare(kProgram);
  if (!stmt.ok()) {
    std::cerr << stmt.status().ToString() << "\n";
    return 1;
  }

  std::cout << "== update-process trace (cf. Figure 2) ==\n";
  verso::Result<verso::ResultSet> rs = stmt->Execute();
  if (!rs.ok()) {
    std::cerr << rs.status().ToString() << "\n";
    return 1;
  }

  const verso::SymbolTable& symbols = (*conn)->symbols();
  const verso::VersionTable& versions = (*conn)->versions();

  std::cout << "\n== committed delta ==\n";
  while (rs->Next()) {
    std::cout << (rs->added() ? "+ " : "- ") << rs->RowToString() << "\n";
  }

  std::cout << "\n== stratification (Section 4) ==\n"
            << StratificationToString(*rs->stratification(),
                                      stmt->program());

  // result(P) — the full fixpoint with every intermediate version — and
  // the per-object histories come from the write introspection.
  std::cout << "\n== result(P): all object versions ==\n"
            << ObjectBaseToString(*rs->update_result(), symbols, versions);

  std::cout << "\n== per-object update histories (Figure 1 as data) ==\n";
  verso::Result<std::vector<verso::ObjectHistory>> histories =
      AllHistories(*rs->update_result(), symbols, versions);
  if (histories.ok()) {
    for (const verso::ObjectHistory& history : *histories) {
      std::cout << HistoryToString(history, symbols, versions);
    }
  }

  std::cout << "\n== new object base ob' ==\n"
            << ObjectBaseToString(session->base(), symbols, versions);

  std::cout << "\nphil keeps his (raised) $4600 salary and joins hpe;\n"
               "bob was fired: no information about him survives in ob'.\n";
  return 0;
}
