// Static analysis: QUERY ANALYZE over the paper's enterprise program
// against a small committed base. Prints the human-readable report
// (diagnostics, strata, independence verdict), then the same report as
// the stable JSON document.
//
// With --json, prints only the JSON report — CI parses it to pin the
// document shape.

#include <cstring>
#include <iostream>

#include "api/api.h"
#include "workloads/workloads.h"

int main(int argc, char** argv) {
  bool json_only = argc > 1 && std::strcmp(argv[1], "--json") == 0;

  verso::Result<std::unique_ptr<verso::Connection>> conn =
      verso::Connection::OpenInMemory();
  if (!conn.ok()) {
    std::cerr << conn.status().ToString() << "\n";
    return 1;
  }

  verso::Status loaded = (*conn)->ImportText(R"(
      phil.isa -> empl.  phil.pos -> mgr.   phil.sal -> 4000.
      bob.isa -> empl.   bob.boss -> phil.  bob.sal -> 4200.
      mary.isa -> empl.  mary.boss -> phil. mary.sal -> 4600.
  )");
  if (!loaded.ok()) {
    std::cerr << loaded.ToString() << "\n";
    return 1;
  }

  std::unique_ptr<verso::Session> session = (*conn)->OpenSession();
  verso::Result<verso::ResultSet> rs = session->Execute(
      std::string("QUERY ANALYZE ") + verso::kEnterpriseProgramText);
  if (!rs.ok()) {
    std::cerr << rs.status().ToString() << "\n";
    return 1;
  }
  const verso::AnalysisReport& report = *rs->analysis();

  if (json_only) {
    std::cout << report.ToJson();
    return 0;
  }

  std::cout << "== QUERY ANALYZE (paper Figure 2 program) ==\n"
            << report.ToText() << "\n";

  // The same surface catches broken programs before they run: this rule
  // negates its own write, so no stratification exists.
  verso::Result<verso::ResultSet> bad = (*conn)->AnalyzeProgram(
      "a: ins[X].p -> yes <- X.isa -> empl, not ins[X].p -> yes.");
  if (!bad.ok()) {
    std::cerr << bad.status().ToString() << "\n";
    return 1;
  }
  std::cout << "== a self-negating rule ==\n";
  while (bad->Next()) {
    std::cout << bad->RowToString() << "\n";
  }

  std::cout << "\n== the report as stable JSON ==\n" << report.ToJson();
  return 0;
}
