// Client API walkthrough: Connection -> Session -> Statement ->
// ResultSet -> Subscribe.
//
// Opens an in-memory connection, shows snapshot-isolated readers (a
// pinned session keeps reading a consistent state while a writer
// commits), prepared-statement reuse, the unified statement grammar
// (updates, ad-hoc derive queries, CREATE VIEW / QUERY), and a view
// subscription receiving per-commit deltas.

#include <iostream>

#include "api/api.h"
#include "core/pretty.h"

int main() {
  // 1. Connection: owns engine + database + view catalog.
  verso::Result<std::unique_ptr<verso::Connection>> opened =
      verso::Connection::OpenInMemory();
  if (!opened.ok()) {
    std::cerr << opened.status().ToString() << "\n";
    return 1;
  }
  verso::Connection& conn = **opened;
  if (!conn.ImportText(R"(
          ann.isa -> empl.  ann.sal -> 2000.
          bob.isa -> empl.  bob.sal -> 6000.
      )").ok()) {
    return 1;
  }

  // 2. A view, created through the unified statement grammar.
  std::unique_ptr<verso::Session> admin = conn.OpenSession();
  if (!admin->Execute("CREATE VIEW rich AS "
                      "derive X.rich -> yes <- X.sal -> S, S > 5000.")
           .ok()) {
    return 1;
  }

  // 3. A long-running reader pins the current epoch...
  std::unique_ptr<verso::Session> reader = conn.OpenSession();
  std::cout << "reader pinned at epoch " << reader->epoch() << "\n";

  // ... and a subscription starts streaming the view's future deltas.
  verso::Result<uint64_t> sub = reader->Subscribe(
      "rich", [](const verso::ViewDelta& delta) {
        std::cout << "  [subscription] epoch " << delta.epoch << ": "
                  << delta.facts.size() << " fact change(s) to '"
                  << delta.view << "'\n";
      });
  if (!sub.ok()) return 1;

  // 4. A writer commits through a prepared statement, twice.
  std::unique_ptr<verso::Session> writer = conn.OpenSession();
  verso::Result<verso::Statement> raise = writer->Prepare(
      "t: mod[ann].sal -> (S, S2) <- ann.sal -> S, S2 = S * 2.");
  if (!raise.ok()) return 1;
  for (int i = 0; i < 2; ++i) {
    verso::Result<verso::ResultSet> rs = raise->Execute();
    if (!rs.ok()) return 1;
    std::cout << "writer committed epoch " << rs->epoch() << " ("
              << rs->size() << " delta rows)\n";
  }

  // 5. Snapshot isolation: the reader still answers from its pinned
  //    epoch; a refreshed session sees ann rich (2000 -> 8000).
  verso::Result<verso::ResultSet> pinned = reader->Execute("QUERY rich");
  std::unique_ptr<verso::Session> head = conn.OpenSession();
  verso::Result<verso::ResultSet> fresh = head->Execute("QUERY rich");
  if (!pinned.ok() || !fresh.ok()) return 1;
  std::cout << "rich @ pinned epoch " << pinned->epoch() << ": "
            << pinned->size() << " row(s); @ head epoch " << fresh->epoch()
            << ": " << fresh->size() << " row(s)\n";
  while (fresh->Next()) std::cout << "  " << fresh->RowToString() << "\n";

  // 6. Ad-hoc derived queries also read the pinned snapshot.
  verso::Result<verso::ResultSet> adhoc = reader->Execute(
      "derive X.cheap -> yes <- X.sal -> S, S < 5000.");
  if (!adhoc.ok()) return 1;
  std::cout << "ad-hoc query over pinned base: " << adhoc->size()
            << " row(s)\n";

  // 7. Refresh re-pins the reader to the head.
  reader->Refresh();
  std::cout << "reader refreshed to epoch " << reader->epoch() << "\n";
  return 0;
}
