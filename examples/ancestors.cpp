// Recursive update-rules (paper Section 2.3, Example 3): materialize the
// set-valued `anc` method as stored facts via recursive inserts, then
// contrast with the derived-method query layer (the Section 6 extension),
// which computes the same closure without modifying the object base.

#include <iostream>

#include "core/engine.h"
#include "core/pretty.h"
#include "parser/parser.h"
#include "query/query.h"

int main() {
  verso::Engine engine;

  // A five-generation chain plus a branch.
  verso::Result<verso::ObjectBase> base = verso::ParseObjectBase(R"(
      ada.isa -> person.    ada.parents -> bert.  ada.parents -> cleo.
      bert.isa -> person.   bert.parents -> dora.
      cleo.isa -> person.
      dora.isa -> person.   dora.parents -> emil.
      emil.isa -> person.
  )", engine);

  // 1) The paper's recursive *update* program: ancestors become stored
  //    facts of the updated objects.
  verso::Result<verso::Program> updates = verso::ParseProgram(R"(
      r1: ins[X].anc -> P <- X.isa -> person / parents -> P.
      r2: ins[X].anc -> P <- ins(X).isa -> person / anc -> A,
                             A.isa -> person / parents -> P.
  )", engine);
  if (!base.ok() || !updates.ok()) {
    std::cerr << (base.ok() ? updates.status() : base.status()).ToString()
              << "\n";
    return 1;
  }
  verso::Result<verso::RunOutcome> outcome = engine.Run(*updates, *base);
  if (!outcome.ok()) {
    std::cerr << outcome.status().ToString() << "\n";
    return 1;
  }
  std::cout << "== ob' after the recursive insert program ==\n"
            << ObjectBaseToString(outcome->new_base, engine.symbols(),
                                  engine.versions());

  // 2) The same closure as *derived* methods (query layer): nothing is
  //    updated; `ancq` is computed on demand over the original base.
  verso::Result<verso::QueryProgram> queries = verso::ParseQueryProgram(R"(
      q1: derive X.ancq -> P <- X.isa -> person / parents -> P.
      q2: derive X.ancq -> P <- X.ancq -> A, A.parents -> P.
  )", engine.symbols());
  if (!queries.ok()) {
    std::cerr << queries.status().ToString() << "\n";
    return 1;
  }
  verso::QueryStats qstats;
  verso::Result<verso::ObjectBase> derived =
      EvaluateQueries(*queries, *base, engine, &qstats);
  if (!derived.ok()) {
    std::cerr << derived.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\n== original base + derived ancq (query layer) ==\n"
            << ObjectBaseToString(*derived, engine.symbols(),
                                  engine.versions())
            << "\nderived " << qstats.derived_facts << " facts in "
            << qstats.rounds << " semi-naive rounds ("
            << qstats.delta_joins << " delta joins)\n";
  return 0;
}
