// Recursive update-rules (paper Section 2.3, Example 3): materialize the
// set-valued `anc` method as stored facts via recursive inserts, then
// contrast with the derived-method query layer (the Section 6 extension),
// which computes the same closure without modifying the object base.
//
// Through the client API the contrast is a snapshot-isolation story: the
// query session pins the original base BEFORE the update commits, so its
// derived closure reads the unmodified genealogy even though the writer
// has long since committed the stored one.

#include <iostream>

#include "api/api.h"
#include "core/pretty.h"

int main() {
  verso::Result<std::unique_ptr<verso::Connection>> conn =
      verso::Connection::OpenInMemory();
  if (!conn.ok()) {
    std::cerr << conn.status().ToString() << "\n";
    return 1;
  }

  // A five-generation chain plus a branch.
  verso::Status loaded = (*conn)->ImportText(R"(
      ada.isa -> person.    ada.parents -> bert.  ada.parents -> cleo.
      bert.isa -> person.   bert.parents -> dora.
      cleo.isa -> person.
      dora.isa -> person.   dora.parents -> emil.
      emil.isa -> person.
  )");
  if (!loaded.ok()) {
    std::cerr << loaded.ToString() << "\n";
    return 1;
  }

  // The reader pins the committed state *now*: everything it evaluates
  // sees this epoch, regardless of later commits.
  std::unique_ptr<verso::Session> reader = (*conn)->OpenSession();

  // 1) The paper's recursive *update* program: ancestors become stored
  //    facts of the updated objects — a committed transaction.
  std::unique_ptr<verso::Session> writer = (*conn)->OpenSession();
  verso::Result<verso::ResultSet> committed = writer->Execute(R"(
      r1: ins[X].anc -> P <- X.isa -> person / parents -> P.
      r2: ins[X].anc -> P <- ins(X).isa -> person / anc -> A,
                             A.isa -> person / parents -> P.
  )");
  if (!committed.ok()) {
    std::cerr << committed.status().ToString() << "\n";
    return 1;
  }
  std::cout << "== ob' after the recursive insert program ==\n"
            << ObjectBaseToString(writer->base(), (*conn)->symbols(),
                                  (*conn)->versions());

  // 2) The same closure as *derived* methods over the reader's pinned
  //    snapshot: nothing is updated, and the pinned base does not even
  //    contain the writer's stored `anc` facts.
  verso::Result<verso::ResultSet> derived = reader->Execute(R"(
      q1: derive X.ancq -> P <- X.isa -> person / parents -> P.
      q2: derive X.ancq -> P <- X.ancq -> A, A.parents -> P.
  )");
  if (!derived.ok()) {
    std::cerr << derived.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\n== derived ancq over the PINNED pre-update snapshot ==\n";
  while (derived->Next()) std::cout << derived->RowToString() << "\n";
  const verso::QueryStats& qstats = *derived->query_stats();
  std::cout << "derived " << qstats.derived_facts << " facts in "
            << qstats.rounds << " semi-naive rounds (" << qstats.delta_joins
            << " delta joins), reading epoch " << derived->epoch()
            << " while the head is at epoch " << (*conn)->epoch() << "\n";
  return 0;
}
