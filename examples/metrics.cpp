// Observability: the always-on metrics registry read through both client
// surfaces. Runs a small scripted workload (commits, a view, a
// subscription, an ad-hoc query), then reads the registry back via
// `QUERY METRICS` (a ResultSet of name/value rows) and
// Connection::DumpMetrics (the stable JSON document).
//
// With --json, prints only the JSON dump — CI parses it to pin the
// document shape.

#include <cstring>
#include <iostream>
#include <sstream>

#include "api/api.h"

int main(int argc, char** argv) {
  bool json_only = argc > 1 && std::strcmp(argv[1], "--json") == 0;

  verso::Result<std::unique_ptr<verso::Connection>> conn =
      verso::Connection::OpenInMemory();
  if (!conn.ok()) {
    std::cerr << conn.status().ToString() << "\n";
    return 1;
  }

  verso::Status loaded = (*conn)->ImportText(R"(
      henry.isa -> empl.  henry.salary -> 250.
      mary.isa -> empl.   mary.salary -> 1000.
  )");
  if (!loaded.ok()) {
    std::cerr << loaded.ToString() << "\n";
    return 1;
  }

  std::unique_ptr<verso::Session> session = (*conn)->OpenSession();
  verso::Result<verso::ResultSet> view = session->Execute(
      "CREATE VIEW rich AS derive X.rich -> yes <- X.salary -> S, S > 500.");
  if (!view.ok()) {
    std::cerr << view.status().ToString() << "\n";
    return 1;
  }
  // Subscribe before the commit so the view fan-out counters move too.
  size_t deliveries = 0;
  verso::Result<uint64_t> sub = session->Subscribe(
      "rich", [&deliveries](const verso::ViewDelta&) { ++deliveries; });
  if (!sub.ok()) {
    std::cerr << sub.status().ToString() << "\n";
    return 1;
  }
  const char* workload[] = {
      "raise: mod[E].salary -> (S, S2) <- E.isa -> empl, E.salary -> S, "
      "S2 = S * 1.1.",
      "derive X.poor -> yes <- X.salary -> S, S < 300.",
      "QUERY rich",
  };
  for (const char* text : workload) {
    verso::Result<verso::ResultSet> rs = session->Execute(text);
    if (!rs.ok()) {
      std::cerr << rs.status().ToString() << "\n";
      return 1;
    }
  }

  if (json_only) {
    (*conn)->DumpMetrics(std::cout);
    return 0;
  }

  std::cout << "== QUERY METRICS ==\n";
  verso::Result<verso::ResultSet> metrics = session->Execute("QUERY METRICS");
  if (!metrics.ok()) {
    std::cerr << metrics.status().ToString() << "\n";
    return 1;
  }
  while (metrics->Next()) {
    std::cout << metrics->RowToString() << "\n";
  }

  std::cout << "\n== Connection::DumpMetrics ==\n";
  (*conn)->DumpMetrics(std::cout);
  std::cout << "\nsubscription deliveries seen by this process: "
            << deliveries << "\n";
  return 0;
}
