// Persistent object bases: update-programs as transactions.
//
// Opens a database directory, imports an object base, commits two
// update-programs (each WAL-logged as a fact delta), checkpoints, then
// reopens the directory to demonstrate recovery.

#include <cstdio>
#include <iostream>

#include "core/pretty.h"
#include "parser/parser.h"
#include "storage/database.h"

int main() {
  const std::string dir = "/tmp/verso_example_db";
  std::remove((dir + "/snapshot.vsnp").c_str());
  std::remove((dir + "/wal.log").c_str());

  {
    verso::Engine engine;
    verso::Result<std::unique_ptr<verso::Database>> db =
        verso::Database::Open(dir, engine);
    if (!db.ok()) {
      std::cerr << db.status().ToString() << "\n";
      return 1;
    }

    verso::Result<verso::ObjectBase> base = verso::ParseObjectBase(R"(
        phil.isa -> empl.  phil.pos -> mgr.   phil.sal -> 4000.
        bob.isa -> empl.   bob.boss -> phil.  bob.sal -> 4200.
    )", engine);
    if (!base.ok() || !(*db)->ImportBase(*base).ok()) {
      std::cerr << "import failed\n";
      return 1;
    }

    // Transaction 1: raises.
    verso::Result<verso::Program> raise = verso::ParseProgram(R"(
        r1: mod[E].sal -> (S, S2) <- E.isa -> empl / pos -> mgr / sal -> S,
                                     S2 = S * 1.1 + 200.
        r2: mod[E].sal -> (S, S2) <- E.isa -> empl / sal -> S,
                                     not E.pos -> mgr, S2 = S * 1.1.
    )", engine);
    // Transaction 2 runs on the *committed* base (raises already folded
    // into plain objects), so it addresses plain versions.
    verso::Result<verso::Program> fire = verso::ParseProgram(R"(
        r3: del[E].* <- E.isa -> empl / boss -> B / sal -> SE,
                        B.isa -> empl / sal -> SB, SE > SB.
    )", engine);
    if (!raise.ok() || !fire.ok()) {
      std::cerr << "parse failed\n";
      return 1;
    }
    if (!(*db)->Execute(*raise).ok() || !(*db)->Execute(*fire).ok()) {
      std::cerr << "execute failed\n";
      return 1;
    }
    std::cout << "committed 3 transactions ("
              << (*db)->wal_records_since_checkpoint()
              << " WAL records); checkpointing...\n";
    if (!(*db)->Checkpoint().ok()) {
      std::cerr << "checkpoint failed\n";
      return 1;
    }
  }

  // Reopen in a fresh engine: state is recovered from the snapshot.
  verso::Engine engine2;
  verso::Result<std::unique_ptr<verso::Database>> reopened =
      verso::Database::Open(dir, engine2);
  if (!reopened.ok()) {
    std::cerr << reopened.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\n== recovered object base ==\n"
            << ObjectBaseToString((*reopened)->current(), engine2.symbols(),
                                  engine2.versions());
  return 0;
}
