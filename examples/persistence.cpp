// Persistent object bases: update-programs as transactions.
//
// Opens a connection on a directory, imports an object base, commits two
// update-programs (each WAL-logged as a fact delta), checkpoints, then
// reopens the directory to demonstrate recovery — all through the
// client API.

#include <cstdio>
#include <iostream>

#include "api/api.h"
#include "core/pretty.h"

int main() {
  const std::string dir = "/tmp/verso_example_db";
  std::remove((dir + "/store.img").c_str());
  std::remove((dir + "/store.plog").c_str());
  std::remove((dir + "/snapshot.vsnp").c_str());
  std::remove((dir + "/wal.log").c_str());

  {
    verso::Result<std::unique_ptr<verso::Connection>> conn =
        verso::Connection::Open(dir);
    if (!conn.ok()) {
      std::cerr << conn.status().ToString() << "\n";
      return 1;
    }
    verso::Status loaded = (*conn)->ImportText(R"(
        phil.isa -> empl.  phil.pos -> mgr.   phil.sal -> 4000.
        bob.isa -> empl.   bob.boss -> phil.  bob.sal -> 4200.
    )");
    if (!loaded.ok()) {
      std::cerr << "import failed: " << loaded.ToString() << "\n";
      return 1;
    }

    std::unique_ptr<verso::Session> session = (*conn)->OpenSession();
    // Transaction 1: raises.
    verso::Result<verso::ResultSet> raised = session->Execute(R"(
        r1: mod[E].sal -> (S, S2) <- E.isa -> empl / pos -> mgr / sal -> S,
                                     S2 = S * 1.1 + 200.
        r2: mod[E].sal -> (S, S2) <- E.isa -> empl / sal -> S,
                                     not E.pos -> mgr, S2 = S * 1.1.
    )");
    // Transaction 2 runs on the *committed* base (raises already folded
    // into plain objects), so it addresses plain versions.
    verso::Result<verso::ResultSet> fired = session->Execute(R"(
        r3: del[E].* <- E.isa -> empl / boss -> B / sal -> SE,
                        B.isa -> empl / sal -> SB, SE > SB.
    )");
    if (!raised.ok() || !fired.ok()) {
      std::cerr << "execute failed\n";
      return 1;
    }
    std::cout << "committed " << (*conn)->epoch() << " transactions ("
              << (*conn)->wal_records_since_checkpoint()
              << " WAL records); checkpointing...\n";
    if (!(*conn)->Checkpoint().ok()) {
      std::cerr << "checkpoint failed\n";
      return 1;
    }
  }

  // Reopen in a fresh connection: state is recovered from the
  // checkpointed store image (plus any WAL suffix — none here).
  verso::Result<std::unique_ptr<verso::Connection>> reopened =
      verso::Connection::Open(dir);
  if (!reopened.ok()) {
    std::cerr << reopened.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\n== recovered object base ==\n"
            << ObjectBaseToString((*reopened)->OpenSession()->base(),
                                  (*reopened)->symbols(),
                                  (*reopened)->versions());
  return 0;
}
