// Experiment E13 (Section 6 extension): derived methods evaluated by the
// query layer — semi-naive vs naive ablation on transitive closure over
// random graphs. Expected shape: both compute the same closure;
// semi-naive's advantage grows with closure depth (naive re-derives the
// whole closure every round).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "query/query.h"

namespace verso::bench {
namespace {

constexpr const char* kClosure = R"(
    q1: derive X.reaches -> Y <- X.edge -> Y.
    q2: derive X.reaches -> Z <- X.reaches -> Y, Y.edge -> Z.
)";

void RunClosure(benchmark::State& state, bool semi_naive) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  Engine engine;
  ObjectBase base = engine.MakeBase();
  MakeGraph(nodes, nodes * 2, /*seed=*/5, engine, base);
  Result<QueryProgram> program =
      ParseQueryProgram(kClosure, engine.symbols());
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }
  QueryOptions options;
  options.semi_naive = semi_naive;
  QueryStats stats;
  for (auto _ : state) {
    Result<ObjectBase> out =
        EvaluateQueries(*program, base, engine, &stats, options);
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*out);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["derived"] = static_cast<double>(stats.derived_facts);
  state.counters["rounds"] = static_cast<double>(stats.rounds);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stats.derived_facts));
}

void BM_ClosureSemiNaive(benchmark::State& state) {
  RunClosure(state, true);
}
BENCHMARK(BM_ClosureSemiNaive)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_ClosureNaive(benchmark::State& state) { RunClosure(state, false); }
BENCHMARK(BM_ClosureNaive)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// Deep chain: the strongest case for semi-naive (rounds == depth).
void RunChain(benchmark::State& state, bool semi_naive) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  Engine engine;
  ObjectBase base = engine.MakeBase();
  for (size_t i = 0; i + 1 < nodes; ++i) {
    engine.AddFact(base, "n" + std::to_string(i), "edge",
                   engine.symbols().Symbol("n" + std::to_string(i + 1)));
  }
  Result<QueryProgram> program =
      ParseQueryProgram(kClosure, engine.symbols());
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }
  QueryOptions options;
  options.semi_naive = semi_naive;
  for (auto _ : state) {
    Result<ObjectBase> out =
        EvaluateQueries(*program, base, engine, nullptr, options);
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*out);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}

void BM_ChainSemiNaive(benchmark::State& state) { RunChain(state, true); }
BENCHMARK(BM_ChainSemiNaive)->Arg(32)->Arg(64)->Arg(128);

void BM_ChainNaive(benchmark::State& state) { RunChain(state, false); }
BENCHMARK(BM_ChainNaive)->Arg(32)->Arg(64)->Arg(128);

}  // namespace
}  // namespace verso::bench

BENCHMARK_MAIN();
