// Experiment E5 (Section 2.3, Example 3): the recursive set-valued `anc`
// program over random genealogies. The recursive stratum iterates once
// per generation, so the expected shape is O(closure size) work with
// rounds tracking the forest depth.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace verso::bench {
namespace {

void BM_RecursiveAncestors(benchmark::State& state) {
  const size_t persons = static_cast<size_t>(state.range(0));
  auto world = std::make_unique<World>();
  world->base = world->engine->MakeBase();
  GenealogyOptions options;
  options.persons = persons;
  options.max_parents = 2;
  Genealogy g = MakeGenealogy(options, *world->engine, world->base);
  size_t closure_size = 0;
  for (const auto& row : g.AncestorClosure()) closure_size += row.size();

  Result<Program> program =
      ParseProgram(kAncestorsProgramText, *world->engine);
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }
  world->program = std::move(program).value();

  EvalStats stats;
  for (auto _ : state) {
    RunOutcome outcome = MustRun(*world, state);
    stats = outcome.stats;
    benchmark::DoNotOptimize(outcome.new_base);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(closure_size));
  state.counters["persons"] = static_cast<double>(persons);
  state.counters["closure_facts"] = static_cast<double>(closure_size);
  state.counters["rounds"] = static_cast<double>(stats.total_rounds());
}
BENCHMARK(BM_RecursiveAncestors)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

// Worst-case chain genealogy: depth == persons, quadratic closure.
void BM_AncestorsChain(benchmark::State& state) {
  const size_t persons = static_cast<size_t>(state.range(0));
  auto world = std::make_unique<World>();
  world->base = world->engine->MakeBase();
  for (size_t i = 0; i < persons; ++i) {
    std::string name = "p" + std::to_string(i);
    world->engine->AddFact(world->base, name, "isa", "person");
    if (i + 1 < persons) {
      world->engine->AddFact(
          world->base, name, "parents",
          world->engine->symbols().Symbol("p" + std::to_string(i + 1)));
    }
  }
  Result<Program> program =
      ParseProgram(kAncestorsProgramText, *world->engine);
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }
  world->program = std::move(program).value();
  for (auto _ : state) {
    RunOutcome outcome = MustRun(*world, state);
    benchmark::DoNotOptimize(outcome.new_base);
  }
  state.counters["persons"] = static_cast<double>(persons);
  state.counters["closure_facts"] =
      static_cast<double>(persons * (persons - 1) / 2);
}
BENCHMARK(BM_AncestorsChain)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

}  // namespace
}  // namespace verso::bench

BENCHMARK_MAIN();
