// Experiment E8 (Section 5): "version-linearity can be easily checked
// during evaluation ... its realization seems to be not expensive."
//
// Same update-program run with and without the incremental linearity
// check; the difference prices the check. Expected shape: a small,
// size-independent relative overhead (one subterm walk per
// materialization).

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace verso::bench {
namespace {

void RunWithOptions(benchmark::State& state, bool check) {
  const size_t employees = static_cast<size_t>(state.range(0));
  std::unique_ptr<World> world =
      MakeEnterpriseWorld(employees, kEnterpriseProgramText);
  EvalOptions options;
  options.check_version_linearity = check;
  for (auto _ : state) {
    RunOutcome outcome = MustRun(*world, state, options);
    benchmark::DoNotOptimize(outcome.new_base);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(employees));
  state.counters["employees"] = static_cast<double>(employees);
}

void BM_WithLinearityCheck(benchmark::State& state) {
  RunWithOptions(state, true);
}
BENCHMARK(BM_WithLinearityCheck)->Arg(256)->Arg(1024)->Arg(4096);

void BM_WithoutLinearityCheck(benchmark::State& state) {
  RunWithOptions(state, false);
}
BENCHMARK(BM_WithoutLinearityCheck)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace
}  // namespace verso::bench

BENCHMARK_MAIN();
