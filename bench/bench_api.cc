// The client API facade (src/api): what a session costs and what it
// buys. Session open against a warm shared snapshot is a refcount
// bump; a commit invalidates the shared snapshot, so commit-then-open
// pays one snapshot copy (base + every view result) — the price of
// retained epochs. Snapshot reads are measured while a writer keeps
// committing (the pinned reader must not slow down or change), and
// subscription fan-out measures delivering one commit's view delta to
// N subscribers.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "api/api.h"
#include "workloads/workloads.h"

namespace verso::bench {
namespace {

constexpr const char* kRichView =
    "CREATE VIEW rich AS "
    "q: derive X.rich -> yes <- X.sal -> S, S > 5000.";
constexpr const char* kChainView =
    "CREATE VIEW chain AS "
    "q1: derive X.chain -> Y <- X.boss -> Y."
    "q2: derive X.chain -> Z <- X.chain -> Y, Y.boss -> Z.";

/// A salary bump on one employee: always applicable, so every execution
/// commits a non-empty delta through both views' maintenance.
constexpr const char* kBumpTxn =
    "t: mod[emp1].sal -> (S, S2) <- emp1.sal -> S, S2 = S + 1.";

std::unique_ptr<Connection> EnterpriseConnection(size_t employees,
                                                 bool with_views) {
  Result<std::unique_ptr<Connection>> conn = Connection::OpenInMemory();
  if (!conn.ok()) return nullptr;
  ObjectBase base = (*conn)->engine().MakeBase();
  EnterpriseOptions options;
  options.employees = employees;
  MakeEnterprise(options, (*conn)->engine(), base);
  if (!(*conn)->Import(base).ok()) return nullptr;
  if (with_views) {
    std::unique_ptr<Session> session = (*conn)->OpenSession();
    if (!session->Execute(kRichView).ok()) return nullptr;
    if (!session->Execute(kChainView).ok()) return nullptr;
  }
  return std::move(conn).value();
}

/// Session open while the shared snapshot is warm: a refcount bump.
void BM_ApiSessionOpenWarm(benchmark::State& state) {
  std::unique_ptr<Connection> conn =
      EnterpriseConnection(state.range(0), /*with_views=*/true);
  if (conn == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  conn->OpenSession();  // builds the epoch's shared snapshot
  for (auto _ : state) {
    std::unique_ptr<Session> session = conn->OpenSession();
    benchmark::DoNotOptimize(session->epoch());
  }
}
BENCHMARK(BM_ApiSessionOpenWarm)->Arg(256)->Arg(1024)->Arg(4096);

/// Commit + session open: the commit invalidates the shared snapshot, so
/// the open pays the full snapshot copy (base + both view results).
void BM_ApiCommitThenPin(benchmark::State& state) {
  std::unique_ptr<Connection> conn =
      EnterpriseConnection(state.range(0), /*with_views=*/true);
  if (conn == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  std::unique_ptr<Session> writer = conn->OpenSession();
  Result<Statement> bump = writer->Prepare(kBumpTxn);
  if (!bump.ok()) {
    state.SkipWithError(bump.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    if (!bump->Execute().ok()) {
      state.SkipWithError("commit failed");
      return;
    }
    std::unique_ptr<Session> session = conn->OpenSession();
    benchmark::DoNotOptimize(session->epoch());
  }
}
BENCHMARK(BM_ApiCommitThenPin)->Arg(256)->Arg(1024)->Arg(4096);

/// Commit alone (lazy re-pin: after its open-time pin, a session
/// committing in a loop never re-copies a snapshot).
void BM_ApiCommitOnly(benchmark::State& state) {
  std::unique_ptr<Connection> conn =
      EnterpriseConnection(state.range(0), /*with_views=*/true);
  if (conn == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  std::unique_ptr<Session> writer = conn->OpenSession();
  Result<Statement> bump = writer->Prepare(kBumpTxn);
  if (!bump.ok()) {
    state.SkipWithError(bump.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    if (!bump->Execute().ok()) {
      state.SkipWithError("commit failed");
      return;
    }
  }
}
BENCHMARK(BM_ApiCommitOnly)->Arg(256)->Arg(1024)->Arg(4096);

/// A pinned reader's QUERY <view> while a writer commits every
/// iteration: the read must stay flat — it answers from the retained
/// snapshot, untouched by the concurrent commit stream.
void BM_ApiSnapshotReadUnderCommits(benchmark::State& state) {
  std::unique_ptr<Connection> conn =
      EnterpriseConnection(state.range(0), /*with_views=*/true);
  if (conn == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  std::unique_ptr<Session> reader = conn->OpenSession();
  std::unique_ptr<Session> writer = conn->OpenSession();
  Result<Statement> query = reader->Prepare("QUERY rich");
  Result<Statement> bump = writer->Prepare(kBumpTxn);
  if (!query.ok() || !bump.ok()) {
    state.SkipWithError("prepare failed");
    return;
  }
  size_t rows = 0;
  for (auto _ : state) {
    if (!bump->Execute().ok()) {
      state.SkipWithError("commit failed");
      return;
    }
    Result<ResultSet> rs = query->Execute();
    if (!rs.ok()) {
      state.SkipWithError(rs.status().ToString().c_str());
      return;
    }
    rows += rs->size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows_per_read"] =
      benchmark::Counter(static_cast<double>(rows),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ApiSnapshotReadUnderCommits)->Arg(256)->Arg(1024)->Arg(4096);

/// One commit delivering its view delta to N subscribers.
void BM_ApiSubscriptionFanout(benchmark::State& state) {
  std::unique_ptr<Connection> conn =
      EnterpriseConnection(1024, /*with_views=*/true);
  if (conn == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  size_t delivered = 0;
  std::vector<std::unique_ptr<Session>> subscribers;
  for (int64_t i = 0; i < state.range(0); ++i) {
    subscribers.push_back(conn->OpenSession());
    if (!subscribers.back()
             ->Subscribe("rich",
                         [&delivered](const ViewDelta& delta) {
                           delivered += delta.facts.size();
                         })
             .ok()) {
      state.SkipWithError("subscribe failed");
      return;
    }
  }
  std::unique_ptr<Session> writer = conn->OpenSession();
  Result<Statement> bump = writer->Prepare(kBumpTxn);
  if (!bump.ok()) {
    state.SkipWithError(bump.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    if (!bump->Execute().ok()) {
      state.SkipWithError("commit failed");
      return;
    }
    benchmark::DoNotOptimize(delivered);
  }
  state.counters["facts_delivered"] =
      benchmark::Counter(static_cast<double>(delivered),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ApiSubscriptionFanout)->Arg(1)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace verso::bench

BENCHMARK_MAIN();
