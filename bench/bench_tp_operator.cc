// Experiment E9: cost decomposition of one T_P application (Section 3's
// three steps). Measures a single operator application over a prepared
// base — step 1 (body matching + T¹ derivation) dominates; step 2's copy
// volume is reported through the copied-facts counter.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/tp_operator.h"

namespace verso::bench {
namespace {

void BM_TpApply(benchmark::State& state) {
  const size_t employees = static_cast<size_t>(state.range(0));
  std::unique_ptr<World> world = MakeEnterpriseWorld(
      employees,
      "r1: mod[E].sal -> (S, S2) <- E.isa -> empl / sal -> S, "
      "S2 = S * 1.1.");
  if (!world->program.Analyze(world->engine->symbols()).ok()) {
    state.SkipWithError("analysis failed");
    return;
  }
  ObjectBase sealed = world->base;
  sealed.SealExistence();
  std::vector<uint32_t> rules{0};
  TpOperator tp(world->engine->symbols(), world->engine->versions());

  TpResult last;
  for (auto _ : state) {
    Result<TpResult> result = tp.Apply(world->program, rules, sealed, nullptr);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    last = std::move(result).value();
    benchmark::DoNotOptimize(last);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(employees));
  state.counters["t1_updates"] = static_cast<double>(last.t1_updates);
  state.counters["copied_facts"] = static_cast<double>(last.t2_copied_facts);
  state.counters["targets"] = static_cast<double>(last.new_states.size());
}
BENCHMARK(BM_TpApply)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

// Step 1 in isolation: a rule whose head is never true (delete of a
// missing fact) prices pure matching without step 2/3 work.
void BM_TpMatchOnly(benchmark::State& state) {
  const size_t employees = static_cast<size_t>(state.range(0));
  std::unique_ptr<World> world = MakeEnterpriseWorld(
      employees,
      "r1: del[E].sal -> 999999999 <- E.isa -> empl / sal -> S.");
  if (!world->program.Analyze(world->engine->symbols()).ok()) {
    state.SkipWithError("analysis failed");
    return;
  }
  ObjectBase sealed = world->base;
  sealed.SealExistence();
  std::vector<uint32_t> rules{0};
  TpOperator tp(world->engine->symbols(), world->engine->versions());
  for (auto _ : state) {
    Result<TpResult> result = tp.Apply(world->program, rules, sealed, nullptr);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(employees));
}
BENCHMARK(BM_TpMatchOnly)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

// Iterated fixpoint: the recursive ancestors closure needs one round per
// generation, so the full run prices repeated T_P application. Naive mode
// re-matches every rule body in every round; semi-naive mode seeds rounds
// >= 1 from the previous round's fact delta — the body_matches counter
// shows the re-derivation volume each mode pays.
void RunTpFixpoint(benchmark::State& state, bool semi_naive) {
  const size_t persons = static_cast<size_t>(state.range(0));
  auto world = std::make_unique<World>();
  world->base = world->engine->MakeBase();
  GenealogyOptions options;
  options.persons = persons;
  options.max_parents = 2;
  MakeGenealogy(options, *world->engine, world->base);
  Result<Program> program =
      ParseProgram(kAncestorsProgramText, *world->engine);
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }
  world->program = std::move(program).value();

  EvalOptions eval;
  eval.semi_naive = semi_naive;
  EvalStats stats;
  for (auto _ : state) {
    RunOutcome outcome = MustRun(*world, state, eval);
    stats = outcome.stats;
    benchmark::DoNotOptimize(outcome.result);
  }
  state.counters["rounds"] = static_cast<double>(stats.total_rounds());
  state.counters["t1_updates"] = static_cast<double>(stats.total_t1_updates());
  state.counters["body_matches"] =
      static_cast<double>(stats.total_body_matches());
}

void BM_TpFixpointSemiNaive(benchmark::State& state) {
  RunTpFixpoint(state, /*semi_naive=*/true);
}
void BM_TpFixpointNaive(benchmark::State& state) {
  RunTpFixpoint(state, /*semi_naive=*/false);
}
BENCHMARK(BM_TpFixpointSemiNaive)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_TpFixpointNaive)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace
}  // namespace verso::bench

BENCHMARK_MAIN();
