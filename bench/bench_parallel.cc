// Threads sweep for the parallel derivation path: the same workloads the
// serial benchmarks price (the recursive ancestors fixpoint of
// bench_tp_operator, the graph-closure recomputation of bench_views),
// plus DRed maintenance, each at 1/2/4/8 evaluation lanes. threads=1
// runs the serial code path (num_threads 0/1 are identical), so each
// sweep's first point is its own baseline; the acceptance bar is >= 1.8x
// at 4 threads on the 4096-person fixpoint. Update programs run under
// the real analyzer-derived admission policy, exactly as Statement
// prepare wires it.

#include <benchmark/benchmark.h>

#include <memory>

#include "analysis/analyzer.h"
#include "bench_common.h"
#include "query/query.h"
#include "views/view.h"

namespace verso::bench {
namespace {

// Graph view: transitive closure (DRed), as in bench_views.
constexpr const char* kGraphViews = R"(
    q1: derive X.reaches -> Y <- X.edge -> Y.
    q2: derive X.reaches -> Z <- X.reaches -> Y, Y.edge -> Z.
)";

ObjectBase MakeGraphBase(Engine& engine, size_t nodes) {
  ObjectBase base = engine.MakeBase();
  MakeGraph(nodes, nodes, /*seed=*/5, engine, base);
  return base;
}

// The recursive ancestors closure of BM_TpFixpointSemiNaive, fanned out:
// one round per generation, hundreds of delta facts per round.
void BM_TpFixpointParallel(benchmark::State& state) {
  const size_t persons = static_cast<size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  auto world = std::make_unique<World>();
  world->base = world->engine->MakeBase();
  GenealogyOptions options;
  options.persons = persons;
  options.max_parents = 2;
  MakeGenealogy(options, *world->engine, world->base);
  Result<Program> program =
      ParseProgram(kAncestorsProgramText, *world->engine);
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }
  world->program = std::move(program).value();

  EvalOptions eval;
  eval.num_threads = threads;
  eval.admit_parallel = MakeParallelAdmission(
      std::make_shared<AnalysisReport>(AnalyzeUpdateProgram(
          world->program, world->engine->symbols())));
  EvalStats stats;
  for (auto _ : state) {
    RunOutcome outcome = MustRun(*world, state, eval);
    stats = outcome.stats;
    benchmark::DoNotOptimize(outcome.result);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["rounds"] = static_cast<double>(stats.total_rounds());
  state.counters["t1_updates"] = static_cast<double>(stats.total_t1_updates());
}
BENCHMARK(BM_TpFixpointParallel)
    ->ArgsProduct({{1024, 4096}, {1, 2, 4, 8}});

// From-scratch derived-method evaluation (the BM_ViewRecomputeGraph
// workload): the recursive stratum's frozen rounds fan the frontier out.
void BM_QueryClosureParallel(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  Engine engine;
  ObjectBase base = MakeGraphBase(engine, nodes);
  Result<QueryProgram> program =
      ParseQueryProgram(kGraphViews, engine.symbols());
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }
  QueryOptions options;
  options.num_threads = threads;
  for (auto _ : state) {
    Result<ObjectBase> out = EvaluateQueries(*program, base, engine,
                                             /*stats=*/nullptr, options);
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*out);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_QueryClosureParallel)
    ->ArgsProduct({{1024, 4096}, {1, 2, 4, 8}});

// DRed maintenance under fan-out: delete one hub edge (Phase A
// overdeletion waves + Phase B rederivation probes run parallel), then
// re-insert it (Phase C semi-naive propagation), alternating.
void BM_DredMaintenanceParallel(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  Engine engine;
  ObjectBase base = MakeGraphBase(engine, nodes);
  Result<QueryProgram> program =
      ParseQueryProgram(kGraphViews, engine.symbols());
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }
  Result<std::unique_ptr<MaterializedView>> view = MaterializedView::Create(
      "closure", std::move(*program), base, engine.symbols(),
      engine.versions(), /*trace=*/nullptr, AnalysisOptions(), threads);
  if (!view.ok()) {
    state.SkipWithError(view.status().ToString().c_str());
    return;
  }
  Vid from = engine.versions().OfOid(engine.symbols().Symbol("n1"));
  MethodId edge = engine.symbols().Method("edge");
  GroundApp app;
  app.result = engine.symbols().Symbol("n2");
  DeltaLog ins{{from, edge, app, /*added=*/true}};
  DeltaLog del{{from, edge, app, /*added=*/false}};
  bool present = (*view)->result().Contains(from, edge, app);
  for (auto _ : state) {
    Status status = (*view)->ApplyBaseDelta(present ? del : ins);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    present = !present;
    benchmark::DoNotOptimize((*view)->result());
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["overdeleted"] =
      static_cast<double>((*view)->stats().overdeleted);
  state.counters["rederived"] =
      static_cast<double>((*view)->stats().rederived);
}
BENCHMARK(BM_DredMaintenanceParallel)
    ->ArgsProduct({{1024, 4096}, {1, 2, 4, 8}});

}  // namespace
}  // namespace verso::bench

BENCHMARK_MAIN();
