// Experiment E12: persistence substrate throughput — codec encode/decode,
// snapshot write/read, WAL append, delta compute/apply, and full
// database transactions with recovery.

#include <benchmark/benchmark.h>

#include <filesystem>

#include "bench_common.h"
#include "storage/codec.h"
#include "storage/database.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "util/io.h"

namespace verso::bench {
namespace {

std::string BenchDir() {
  std::string dir = std::filesystem::temp_directory_path().string() +
                    "/verso_bench_storage";
  std::filesystem::remove_all(dir);
  EnsureDirectory(dir).ok();
  return dir;
}

std::unique_ptr<World> BaseWorld(size_t employees) {
  return MakeEnterpriseWorld(employees, kEnterpriseProgramText);
}

void BM_EncodeObjectBase(benchmark::State& state) {
  std::unique_ptr<World> world = BaseWorld(static_cast<size_t>(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    std::string payload = EncodeObjectBase(
        world->base, world->engine->symbols(), world->engine->versions());
    bytes = payload.size();
    benchmark::DoNotOptimize(payload);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(bytes));
  state.counters["facts"] = static_cast<double>(world->base.fact_count());
}
BENCHMARK(BM_EncodeObjectBase)->Arg(256)->Arg(1024)->Arg(4096);

void BM_DecodeObjectBase(benchmark::State& state) {
  std::unique_ptr<World> world = BaseWorld(static_cast<size_t>(state.range(0)));
  std::string payload = EncodeObjectBase(
      world->base, world->engine->symbols(), world->engine->versions());
  for (auto _ : state) {
    Engine engine;
    ObjectBase decoded = engine.MakeBase();
    Status s = DecodeObjectBaseInto(payload, engine.symbols(),
                                    engine.versions(), decoded);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(payload.size()));
}
BENCHMARK(BM_DecodeObjectBase)->Arg(256)->Arg(1024)->Arg(4096);

void BM_SnapshotWriteRead(benchmark::State& state) {
  std::unique_ptr<World> world = BaseWorld(static_cast<size_t>(state.range(0)));
  std::string dir = BenchDir();
  std::string path = dir + "/bench.vsnp";
  for (auto _ : state) {
    Status w = WriteSnapshot(path, world->base, world->engine->symbols(),
                             world->engine->versions());
    if (!w.ok()) {
      state.SkipWithError(w.ToString().c_str());
      return;
    }
    Engine engine;
    ObjectBase loaded = engine.MakeBase();
    Status r = ReadSnapshotInto(path, engine.symbols(), engine.versions(),
                                loaded);
    if (!r.ok()) {
      state.SkipWithError(r.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(loaded);
  }
}
BENCHMARK(BM_SnapshotWriteRead)->Arg(256)->Arg(1024);

void BM_DeltaComputeApply(benchmark::State& state) {
  std::unique_ptr<World> world = BaseWorld(static_cast<size_t>(state.range(0)));
  Result<RunOutcome> outcome = world->engine->Run(world->program, world->base);
  if (!outcome.ok()) {
    state.SkipWithError("run failed");
    return;
  }
  ObjectBase sealed = world->base;
  sealed.SealExistence();
  size_t delta_size = 0;
  for (auto _ : state) {
    FactDelta delta = ComputeDelta(sealed, outcome->new_base);
    delta_size = delta.added.size() + delta.removed.size();
    ObjectBase patched = sealed;
    ApplyDelta(delta, patched);
    benchmark::DoNotOptimize(patched);
  }
  state.counters["delta_facts"] = static_cast<double>(delta_size);
}
BENCHMARK(BM_DeltaComputeApply)->Arg(256)->Arg(1024);

void BM_WalAppend(benchmark::State& state) {
  std::string dir = BenchDir();
  WalWriter wal(dir + "/bench.log");
  std::string payload(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    Status s = wal.Append(payload);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(payload.size()));
  RemoveFile(dir + "/bench.log").ok();
}
BENCHMARK(BM_WalAppend)->Arg(128)->Arg(4096)->Arg(65536);

void BM_DatabaseTransaction(benchmark::State& state) {
  const size_t employees = static_cast<size_t>(state.range(0));
  std::string dir = BenchDir() + "/db";
  Engine engine;
  Result<std::unique_ptr<Database>> db = Database::Open(dir, engine);
  if (!db.ok()) {
    state.SkipWithError("open failed");
    return;
  }
  ObjectBase base = engine.MakeBase();
  EnterpriseOptions options;
  options.employees = employees;
  MakeEnterprise(options, engine, base);
  if (!(*db)->ImportBase(base).ok()) {
    state.SkipWithError("import failed");
    return;
  }
  // A self-inverting transaction keeps the database size stable across
  // iterations: double every salary, then halve it.
  Result<Program> doubling = ParseProgram(
      "r: mod[E].sal -> (S, S2) <- E.isa -> empl, E.sal -> S, S2 = S * 2.",
      engine);
  Result<Program> halving = ParseProgram(
      "r: mod[E].sal -> (S, S2) <- E.isa -> empl, E.sal -> S, S2 = S / 2.",
      engine);
  if (!doubling.ok() || !halving.ok()) {
    state.SkipWithError("parse failed");
    return;
  }
  for (auto _ : state) {
    if (!(*db)->Execute(*doubling).ok() || !(*db)->Execute(*halving).ok()) {
      state.SkipWithError("execute failed");
      return;
    }
  }
  state.counters["wal_records"] =
      static_cast<double>((*db)->wal_records_since_checkpoint());
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_DatabaseTransaction)->Arg(64)->Arg(256);

}  // namespace
}  // namespace verso::bench

BENCHMARK_MAIN();
