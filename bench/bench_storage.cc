// Experiment E12: persistence substrate throughput — codec encode/decode,
// snapshot write/read, WAL append, delta compute/apply, and full
// database transactions with recovery.

#include <benchmark/benchmark.h>

#include <filesystem>

#include "bench_common.h"
#include "storage/codec.h"
#include "storage/database.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "util/fault_env.h"
#include "util/io.h"

namespace verso::bench {
namespace {

std::string BenchDir() {
  std::string dir = std::filesystem::temp_directory_path().string() +
                    "/verso_bench_storage";
  std::filesystem::remove_all(dir);
  EnsureDirectory(dir).ok();
  return dir;
}

std::unique_ptr<World> BaseWorld(size_t employees) {
  return MakeEnterpriseWorld(employees, kEnterpriseProgramText);
}

void BM_EncodeObjectBase(benchmark::State& state) {
  std::unique_ptr<World> world = BaseWorld(static_cast<size_t>(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    std::string payload = EncodeObjectBase(
        world->base, world->engine->symbols(), world->engine->versions());
    bytes = payload.size();
    benchmark::DoNotOptimize(payload);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(bytes));
  state.counters["facts"] = static_cast<double>(world->base.fact_count());
}
BENCHMARK(BM_EncodeObjectBase)->Arg(256)->Arg(1024)->Arg(4096);

void BM_DecodeObjectBase(benchmark::State& state) {
  std::unique_ptr<World> world = BaseWorld(static_cast<size_t>(state.range(0)));
  std::string payload = EncodeObjectBase(
      world->base, world->engine->symbols(), world->engine->versions());
  for (auto _ : state) {
    Engine engine;
    ObjectBase decoded = engine.MakeBase();
    Status s = DecodeObjectBaseInto(payload, engine.symbols(),
                                    engine.versions(), decoded);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(payload.size()));
}
BENCHMARK(BM_DecodeObjectBase)->Arg(256)->Arg(1024)->Arg(4096);

void BM_SnapshotWriteRead(benchmark::State& state) {
  std::unique_ptr<World> world = BaseWorld(static_cast<size_t>(state.range(0)));
  std::string dir = BenchDir();
  std::string path = dir + "/bench.vsnp";
  for (auto _ : state) {
    Status w = WriteSnapshot(path, world->base, world->engine->symbols(),
                             world->engine->versions());
    if (!w.ok()) {
      state.SkipWithError(w.ToString().c_str());
      return;
    }
    Engine engine;
    ObjectBase loaded = engine.MakeBase();
    Status r = ReadSnapshotInto(path, engine.symbols(), engine.versions(),
                                loaded);
    if (!r.ok()) {
      state.SkipWithError(r.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(loaded);
  }
}
BENCHMARK(BM_SnapshotWriteRead)->Arg(256)->Arg(1024);

void BM_DeltaComputeApply(benchmark::State& state) {
  std::unique_ptr<World> world = BaseWorld(static_cast<size_t>(state.range(0)));
  Result<RunOutcome> outcome = world->engine->Run(world->program, world->base);
  if (!outcome.ok()) {
    state.SkipWithError("run failed");
    return;
  }
  ObjectBase sealed = world->base;
  sealed.SealExistence();
  size_t delta_size = 0;
  for (auto _ : state) {
    FactDelta delta = ComputeDelta(sealed, outcome->new_base);
    delta_size = delta.added.size() + delta.removed.size();
    ObjectBase patched = sealed;
    ApplyDelta(delta, patched);
    benchmark::DoNotOptimize(patched);
  }
  state.counters["delta_facts"] = static_cast<double>(delta_size);
}
BENCHMARK(BM_DeltaComputeApply)->Arg(256)->Arg(1024);

void BM_WalAppend(benchmark::State& state) {
  std::string dir = BenchDir();
  WalWriter wal(dir + "/bench.log");
  std::string payload(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    Status s = wal.Append(payload);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(payload.size()));
  RemoveFile(dir + "/bench.log").ok();
}
BENCHMARK(BM_WalAppend)->Arg(128)->Arg(4096)->Arg(65536);

void BM_DatabaseTransaction(benchmark::State& state) {
  const size_t employees = static_cast<size_t>(state.range(0));
  std::string dir = BenchDir() + "/db";
  Engine engine;
  Result<std::unique_ptr<Database>> db = Database::Open(dir, engine);
  if (!db.ok()) {
    state.SkipWithError("open failed");
    return;
  }
  ObjectBase base = engine.MakeBase();
  EnterpriseOptions options;
  options.employees = employees;
  MakeEnterprise(options, engine, base);
  if (!(*db)->ImportBase(base).ok()) {
    state.SkipWithError("import failed");
    return;
  }
  // A self-inverting transaction keeps the database size stable across
  // iterations: double every salary, then halve it.
  Result<Program> doubling = ParseProgram(
      "r: mod[E].sal -> (S, S2) <- E.isa -> empl, E.sal -> S, S2 = S * 2.",
      engine);
  Result<Program> halving = ParseProgram(
      "r: mod[E].sal -> (S, S2) <- E.isa -> empl, E.sal -> S, S2 = S / 2.",
      engine);
  if (!doubling.ok() || !halving.ok()) {
    state.SkipWithError("parse failed");
    return;
  }
  for (auto _ : state) {
    if (!(*db)->Execute(*doubling).ok() || !(*db)->Execute(*halving).ok()) {
      state.SkipWithError("execute failed");
      return;
    }
  }
  state.counters["wal_records"] =
      static_cast<double>((*db)->wal_records_since_checkpoint());
  state.counters["io_failures"] =
      static_cast<double>((*db)->stats().io_failures);
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_DatabaseTransaction)->Arg(64)->Arg(256);

void BM_TransientRetryCommit(benchmark::State& state) {
  // The degraded-mode commit path under a flaky device: every WAL append
  // fails transiently `range(0)` times before succeeding, exercising the
  // rollback-and-retry loop. Counters report the fault behavior the same
  // way the other benches report index hits.
  const uint32_t flaky = static_cast<uint32_t>(state.range(0));
  FaultInjectingEnv env;
  Engine engine;
  DatabaseOptions options;
  options.env = &env;
  options.retry_backoff_us = 0;  // measure the I/O path, not the sleep
  options.wal_retry_limit = flaky + 1;
  Result<std::unique_ptr<Database>> db =
      Database::Open("/bench", engine, options);
  if (!db.ok()) {
    state.SkipWithError(db.status().ToString().c_str());
    return;
  }
  Result<ObjectBase> base =
      ParseObjectBase("e.isa -> empl.  e.sal -> 100.", engine);
  if (!base.ok() || !(*db)->ImportBase(*base).ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  Result<Program> doubling = ParseProgram(
      "r: mod[E].sal -> (S, S2) <- E.isa -> empl, E.sal -> S, S2 = S * 2.",
      engine);
  Result<Program> halving = ParseProgram(
      "r: mod[E].sal -> (S, S2) <- E.isa -> empl, E.sal -> S, S2 = S / 2.",
      engine);
  if (!doubling.ok() || !halving.ok()) {
    state.SkipWithError("parse failed");
    return;
  }
  FaultInjectingEnv::FaultPlan plan;
  plan.kind = FaultInjectingEnv::FaultKind::kTransient;
  plan.filter = FaultInjectingEnv::OpFilter::kAppend;
  plan.repeat = flaky;
  size_t iter = 0;
  for (auto _ : state) {
    if (flaky > 0) {
      plan.fail_at = 0;  // the next append, then `repeat` in a row
      env.SetPlan(plan);
    }
    Program& program = (iter++ % 2 == 0) ? *doubling : *halving;
    if (!(*db)->Execute(program).ok()) {
      state.SkipWithError((*db)->health().ToString().c_str());
      return;
    }
  }
  state.counters["io_failures"] =
      static_cast<double>((*db)->stats().io_failures);
  state.counters["retries"] = static_cast<double>((*db)->stats().retries);
  state.counters["degraded_entered"] =
      static_cast<double>((*db)->stats().degraded_entered);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TransientRetryCommit)->Arg(0)->Arg(1)->Arg(3);

}  // namespace
}  // namespace verso::bench

BENCHMARK_MAIN();
