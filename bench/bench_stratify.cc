// Experiment E6: stratification analysis cost (conditions (a)-(d) of
// Section 4) as the program grows. The analysis is quadratic in the rule
// count (pairwise unification tests) with tiny constants; the bench
// verifies that shape and prices the paper's own 4-rule program.

#include <benchmark/benchmark.h>

#include <string>

#include "bench_common.h"
#include "core/stratify.h"

namespace verso::bench {
namespace {

/// A layered program: layer i modifies objects tagged by layer i-1's
/// version, giving a deep stratification.
std::string LayeredProgram(int layers) {
  std::string text;
  std::string version = "E";
  for (int i = 0; i < layers; ++i) {
    text += "l" + std::to_string(i) + ": ins[" + version + "].t" +
            std::to_string(i) + " -> yes <- " + version + ".isa -> empl.\n";
    version = "ins(" + version + ")";
  }
  return text;
}

/// A wide program: n independent rule pairs (writer below reader).
std::string WideProgram(int pairs) {
  std::string text;
  for (int i = 0; i < pairs; ++i) {
    std::string cls = "c" + std::to_string(i);
    text += "w" + std::to_string(i) + ": mod[E].sal -> (S, S2) <- E.isa -> " +
            cls + ", E.sal -> S, S2 = S + 1.\n";
    text += "r" + std::to_string(i) + ": ins[mod(E)].seen -> yes <- "
            "mod(E).isa -> " + cls + ".\n";
  }
  return text;
}

void RunStratifyBench(benchmark::State& state, const std::string& text) {
  SymbolTable symbols;
  Result<Program> program = ParseProgram(text, symbols);
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }
  size_t strata = 0;
  for (auto _ : state) {
    Result<Stratification> s = Stratify(*program);
    if (!s.ok()) {
      state.SkipWithError(s.status().ToString().c_str());
      return;
    }
    strata = s->stratum_count();
    benchmark::DoNotOptimize(*s);
  }
  state.counters["rules"] = static_cast<double>(program->rules.size());
  state.counters["strata"] = static_cast<double>(strata);
}

void BM_StratifyLayered(benchmark::State& state) {
  RunStratifyBench(state, LayeredProgram(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_StratifyLayered)->Arg(4)->Arg(16)->Arg(64)->Arg(128);

void BM_StratifyWide(benchmark::State& state) {
  RunStratifyBench(state, WideProgram(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_StratifyWide)->Arg(4)->Arg(16)->Arg(64)->Arg(128);

void BM_StratifyPaperProgram(benchmark::State& state) {
  RunStratifyBench(state, kEnterpriseProgramText);
}
BENCHMARK(BM_StratifyPaperProgram);

}  // namespace
}  // namespace verso::bench

BENCHMARK_MAIN();
