// Experiment E1 (paper Figure 1): an object undergoing k consecutive
// groups of basic updates accumulates the version chain
// o, θ1(o), θ2(θ1(o)), ..., θk(...θ1(o)...).
//
// The paper illustrates the chain; here we *measure* it: cost of running
// a k-stage update pipeline (each stage modifies the previous stage's
// version) as k grows, plus the VID-interning cost in isolation. Expected
// shape: linear in k — each stage copies one state and rewrites one fact.

#include <benchmark/benchmark.h>

#include <string>

#include "bench_common.h"

namespace verso::bench {
namespace {

/// Builds a program whose stage i modifies version mod^i(o):
///   mod[o].v -> (V, V2) <- o.v -> V, V2 = V + 1.
///   mod[mod(o)].v -> (V, V2) <- mod(o).v -> V, V2 = V + 1.   ... etc.
std::string ChainProgram(int stages) {
  std::string text;
  std::string version = "o";
  for (int i = 0; i < stages; ++i) {
    text += "s" + std::to_string(i) + ": mod[" + version +
            "].v -> (V, V2) <- " + version + ".v -> V, V2 = V + 1.\n";
    version = "mod(" + version + ")";
  }
  return text;
}

void BM_VersionChain(benchmark::State& state) {
  const int stages = static_cast<int>(state.range(0));
  Engine engine;
  ObjectBase base = engine.MakeBase();
  engine.AddFact(base, "o", "v", int64_t{0});
  Result<Program> program = ParseProgram(ChainProgram(stages), engine);
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }
  size_t versions = 0;
  for (auto _ : state) {
    Result<RunOutcome> outcome = engine.Run(*program, base);
    if (!outcome.ok()) {
      state.SkipWithError(outcome.status().ToString().c_str());
      return;
    }
    versions = outcome->stats.versions_materialized;
    benchmark::DoNotOptimize(outcome->new_base);
  }
  state.counters["stages"] = stages;
  state.counters["versions_materialized"] = static_cast<double>(versions);
}
BENCHMARK(BM_VersionChain)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Arg(64);

// VID interning in isolation: Child() chains of depth k for n objects.
void BM_VidInterning(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    SymbolTable symbols;
    VersionTable versions;
    for (int o = 0; o < 256; ++o) {
      Vid vid = versions.OfOid(symbols.Symbol("o" + std::to_string(o)));
      for (int d = 0; d < depth; ++d) {
        vid = versions.Child(
            vid, static_cast<UpdateKind>(d % 3));
      }
      benchmark::DoNotOptimize(vid);
    }
  }
  state.SetItemsProcessed(state.iterations() * 256 * depth);
}
BENCHMARK(BM_VidInterning)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// Subterm tests (the primitive behind linearity checks and commit):
// cost is O(depth difference).
void BM_SubtermCheck(benchmark::State& state) {
  SymbolTable symbols;
  VersionTable versions;
  Vid root = versions.OfOid(symbols.Symbol("o"));
  Vid deep = root;
  for (int d = 0; d < 64; ++d) deep = versions.Child(deep, UpdateKind::kModify);
  for (auto _ : state) {
    benchmark::DoNotOptimize(versions.IsSubterm(root, deep));
    benchmark::DoNotOptimize(versions.IsSubterm(deep, root));
  }
}
BENCHMARK(BM_SubtermCheck);

}  // namespace
}  // namespace verso::bench

BENCHMARK_MAIN();
