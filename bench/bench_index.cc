// The result-keyed index (IndexedApps, src/core/object_base.h): what a
// bound-result lookup costs now that every `X.m -> c` literal with the
// result ground at bind time probes a (result -> offsets) index instead
// of scanning the method's full application vector.
//
//   * Bound-result body match: one rule whose single body literal names
//     a ground result, matched over N objects carrying kLikes facts of
//     the probed method each — the matcher's hottest literal form.
//   * DRed rederive probe: a recursive closure view absorbing an edge
//     delete + re-insert; Phase A/B probes bind rule heads, so their
//     body literals arrive with results bound and hit the index.
//
// Each workload runs twice: indexed (the default) and with the index
// disabled for ablation (SharedApps::EnableResultIndex(false)), which
// degrades ForEachAppWithResult to the pre-index full scan over the same
// code path. The acceptance bar for the index PR: >= 5x fewer per-probe
// fact visits (via the IndexStats counters) and a wall-clock win on the
// bound-result match at 4096 objects.

#include <benchmark/benchmark.h>

#include <string>

#include "core/engine.h"
#include "core/match.h"
#include "parser/parser.h"
#include "query/query.h"
#include "views/view.h"

namespace verso::bench {
namespace {

/// Sets the index/ablation mode for a scope and always restores the
/// indexed default, so an early error exit can never leave the
/// process-global toggle pointing at the scan path for later benchmarks.
class IndexModeGuard {
 public:
  explicit IndexModeGuard(bool indexed) {
    SharedApps::EnableResultIndex(indexed);
  }
  ~IndexModeGuard() { SharedApps::EnableResultIndex(true); }
};

constexpr size_t kLikes = 32;   // facts of the probed method per object
constexpr size_t kGenres = 64;  // distinct result constants

/// N objects, each liking kLikes of the kGenres genres (13 is coprime to
/// kGenres, so the likes of one object are distinct).
void FillLikes(Engine& engine, ObjectBase& base, size_t objects) {
  for (size_t i = 0; i < objects; ++i) {
    std::string name = "p" + std::to_string(i);
    for (size_t k = 0; k < kLikes; ++k) {
      size_t genre = (i * 7 + k * 13) % kGenres;
      engine.AddFact(base, name, "likes",
                     "g" + std::to_string(genre));
    }
  }
}

/// Shared body of the bound-result match benchmark; `indexed` selects the
/// real path or the ablation scan.
void RunBoundResultMatch(benchmark::State& state, bool indexed) {
  IndexModeGuard mode(indexed);
  Engine engine;
  ObjectBase base = engine.MakeBase();
  FillLikes(engine, base, static_cast<size_t>(state.range(0)));

  Result<Program> program =
      ParseProgram("r: ins[x].hit -> E <- E.likes -> g7.", engine);
  if (!program.ok() ||
      !AnalyzeRule(program->rules[0], engine.symbols()).ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  const Rule& rule = program->rules[0];

  IndexStats istats;
  MatchContext ctx{engine.symbols(), engine.versions(), base, &istats};
  size_t matches = 0;
  for (auto _ : state) {
    Status status = ForEachBodyMatch(rule, ctx, [&](const Bindings&) {
      ++matches;
      return Status::Ok();
    });
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(matches);
  }
  // Per-probe fact visits: a scan visits every fact of the method
  // (kLikes); the index visits kLikes minus what it avoided.
  const double probes = static_cast<double>(istats.index_probes);
  const double visits =
      probes * kLikes - static_cast<double>(istats.indexed_scan_avoided_facts);
  state.counters["probes"] = probes;
  state.counters["avoided_facts"] =
      static_cast<double>(istats.indexed_scan_avoided_facts);
  state.counters["visits_per_probe"] = probes == 0 ? 0 : visits / probes;
}

void BM_IdxBoundResultMatch(benchmark::State& state) {
  RunBoundResultMatch(state, /*indexed=*/true);
}
BENCHMARK(BM_IdxBoundResultMatch)->Arg(256)->Arg(1024)->Arg(4096);

void BM_IdxBoundResultMatchScanBaseline(benchmark::State& state) {
  RunBoundResultMatch(state, /*indexed=*/false);
}
BENCHMARK(BM_IdxBoundResultMatchScanBaseline)->Arg(256)->Arg(1024)->Arg(4096);

constexpr const char* kClosureView = R"(
    q1: derive X.reaches -> Y <- X.edge -> Y.
    q2: derive X.reaches -> Z <- X.reaches -> Y, Y.edge -> Z.
)";

constexpr size_t kChainLength = 64;

/// N nodes arranged in chains of kChainLength: long enough reaches-lists
/// that a rederive probe's bound-result lookup has real scanning to skip.
ObjectBase MakeChains(Engine& engine, size_t nodes) {
  ObjectBase base = engine.MakeBase();
  for (size_t i = 0; i + 1 < nodes; ++i) {
    if ((i + 1) % kChainLength == 0) continue;  // chain boundary
    engine.AddFact(base, "n" + std::to_string(i), "edge",
                   "n" + std::to_string(i + 1));
  }
  return base;
}

/// Shared body of the DRed maintenance benchmark: toggle one mid-chain
/// edge, so every other iteration overdeletes the crossing reaches-facts
/// and rederives via goal-directed (head-bound) probes.
void RunDRedRederive(benchmark::State& state, bool indexed) {
  IndexModeGuard mode(indexed);
  Engine engine;
  ObjectBase base = MakeChains(engine, static_cast<size_t>(state.range(0)));
  Result<QueryProgram> program =
      ParseQueryProgram(kClosureView, engine.symbols());
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }
  Result<std::unique_ptr<MaterializedView>> view = MaterializedView::Create(
      "closure", std::move(*program), base, engine.symbols(),
      engine.versions());
  if (!view.ok()) {
    state.SkipWithError(view.status().ToString().c_str());
    return;
  }

  // The toggled edge sits mid-chain, so the overdelete cascade crosses
  // it from both sides and Phase B probes every overdeleted fact.
  Vid from = engine.versions().OfOid(engine.symbols().Symbol("n16"));
  MethodId edge = engine.symbols().Method("edge");
  GroundApp app;
  app.result = engine.symbols().Symbol("n17");
  DeltaLog ins{{from, edge, app, /*added=*/true}};
  DeltaLog del{{from, edge, app, /*added=*/false}};
  bool present = true;
  for (auto _ : state) {
    Status status = (*view)->ApplyBaseDelta(present ? del : ins);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    present = !present;
    benchmark::DoNotOptimize((*view)->result());
  }
  const ViewStats& stats = (*view)->stats();
  state.counters["rederive_probes"] =
      static_cast<double>(stats.rederive_probes);
  state.counters["index_probes"] = static_cast<double>(stats.index_probes);
  state.counters["avoided_facts"] =
      static_cast<double>(stats.indexed_scan_avoided_facts);
}

void BM_IdxDRedRederive(benchmark::State& state) {
  RunDRedRederive(state, /*indexed=*/true);
}
BENCHMARK(BM_IdxDRedRederive)->Arg(256)->Arg(1024)->Arg(4096);

void BM_IdxDRedRederiveScanBaseline(benchmark::State& state) {
  RunDRedRederive(state, /*indexed=*/false);
}
BENCHMARK(BM_IdxDRedRederiveScanBaseline)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace
}  // namespace verso::bench

BENCHMARK_MAIN();
