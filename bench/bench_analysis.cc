// Prices the static analyzer: full AnalyzeUpdateProgram runs at 256 to
// 4096 generated rules (the pairwise write-set classification is
// quadratic per stratum, so wide single-stratum programs are the worst
// case), plus the end-to-end prepare overhead the analyzer adds to a
// Statement on the paper's own 4-rule program.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "analysis/analyzer.h"
#include "api/api.h"
#include "bench_common.h"

namespace verso::bench {
namespace {

/// `pairs` disjoint writer/reader rule pairs (2 * pairs rules): every
/// writer owns its method, so all write sets are provably disjoint —
/// the common healthy shape, with zero diagnostics.
std::string DisjointProgram(int pairs) {
  std::string text;
  for (int i = 0; i < pairs; ++i) {
    std::string n = std::to_string(i);
    text += "w" + n + ": mod[E].pay" + n + " -> (S, S2) <- E.isa -> c" + n +
            ", E.pay" + n + " -> S, S2 = S + 1.\n";
    text += "r" + n + ": ins[mod(E)].seen" + n +
            " -> yes <- mod(E).isa -> c" + n + ".\n";
  }
  return text;
}

/// `rules` ins heads on one shared (version, method): a single stratum
/// whose pairwise classification visits every rule pair — the quadratic
/// worst case the 4096-rule point sizes.
std::string SharedTargetProgram(int rules) {
  std::string text;
  for (int i = 0; i < rules; ++i) {
    std::string n = std::to_string(i);
    text += "r" + n + ": ins[E].tag -> t" + n + " <- E.isa -> c" + n +
            ".\n";
  }
  return text;
}

void RunAnalyzeBench(benchmark::State& state, const std::string& text) {
  SymbolTable symbols;
  Result<Program> program = ParseProgram(text, symbols);
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }
  size_t diagnostics = 0;
  for (auto _ : state) {
    AnalysisReport report = AnalyzeUpdateProgram(*program, symbols);
    diagnostics = report.diagnostics.size();
    benchmark::DoNotOptimize(report);
  }
  state.counters["rules"] = static_cast<double>(program->rules.size());
  state.counters["diagnostics"] = static_cast<double>(diagnostics);
}

void BM_AnalyzeDisjoint(benchmark::State& state) {
  RunAnalyzeBench(state, DisjointProgram(static_cast<int>(state.range(0))));
}
// 2 * pairs rules; the version-level dependency graph is quadratic in
// the pair count, so the 4096-rule point lives in SharedTarget below.
BENCHMARK(BM_AnalyzeDisjoint)->Arg(128)->Arg(512);

void BM_AnalyzeSharedTarget(benchmark::State& state) {
  RunAnalyzeBench(state,
                  SharedTargetProgram(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_AnalyzeSharedTarget)->Arg(256)->Arg(1024)->Arg(4096);

void BM_AnalyzePaperProgram(benchmark::State& state) {
  RunAnalyzeBench(state, kEnterpriseProgramText);
}
BENCHMARK(BM_AnalyzePaperProgram);

/// End-to-end Statement::Prepare of the paper's program with the
/// analyzer on vs off: the user-visible prepare overhead.
void RunPrepareBench(benchmark::State& state, bool enabled) {
  ConnectionOptions options;
  options.analysis.enabled = enabled;
  Result<std::unique_ptr<Connection>> conn =
      Connection::OpenInMemory(options);
  if (!conn.ok()) {
    state.SkipWithError(conn.status().ToString().c_str());
    return;
  }
  std::unique_ptr<Session> session = (*conn)->OpenSession();
  for (auto _ : state) {
    Result<Statement> stmt = session->Prepare(kEnterpriseProgramText);
    if (!stmt.ok()) {
      state.SkipWithError(stmt.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*stmt);
  }
}

void BM_PrepareAnalysisOn(benchmark::State& state) {
  RunPrepareBench(state, true);
}
BENCHMARK(BM_PrepareAnalysisOn);

void BM_PrepareAnalysisOff(benchmark::State& state) {
  RunPrepareBench(state, false);
}
BENCHMARK(BM_PrepareAnalysisOff);

}  // namespace
}  // namespace verso::bench

BENCHMARK_MAIN();
