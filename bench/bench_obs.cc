// Ablation for the always-on metrics subsystem (src/obs): the same
// workloads with the global registry enabled vs disabled price what the
// instrumentation costs when it stays on in Release. Two shapes:
//
//   * fixpoint — the recursive ancestors closure evaluated with a
//     MetricsTraceSink attached (how every Connection evaluates), so the
//     per-event bridge cost is on the measured path;
//   * commit — client-API commits through Connection/Session, covering
//     the commit-path phase timers (evaluate/install/fan-out spans) and
//     the statement counters.
//
// The On/Off pairs should stay within a few percent of each other: a
// disabled registry skips every clock read and atomic bump, so the Off
// run is the "no instrumentation" baseline.

#include <benchmark/benchmark.h>

#include "api/api.h"
#include "bench_common.h"
#include "obs/metrics.h"
#include "obs/metrics_sink.h"

namespace verso::bench {
namespace {

/// Flips the global registry for one benchmark run and restores it.
class ScopedEnabled {
 public:
  explicit ScopedEnabled(bool on)
      : registry_(MetricsRegistry::Global()), was_(registry_.enabled()) {
    registry_.set_enabled(on);
  }
  ~ScopedEnabled() { registry_.set_enabled(was_); }

 private:
  MetricsRegistry& registry_;
  bool was_;
};

void RunObsFixpoint(benchmark::State& state, bool metrics_on) {
  ScopedEnabled scoped(metrics_on);
  const size_t persons = static_cast<size_t>(state.range(0));
  auto world = std::make_unique<World>();
  world->base = world->engine->MakeBase();
  GenealogyOptions options;
  options.persons = persons;
  options.max_parents = 2;
  MakeGenealogy(options, *world->engine, world->base);
  Result<Program> program =
      ParseProgram(kAncestorsProgramText, *world->engine);
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }
  world->program = std::move(program).value();

  MetricsTraceSink sink(MetricsRegistry::Global());
  for (auto _ : state) {
    Result<RunOutcome> outcome =
        world->engine->Run(world->program, world->base, EvalOptions(), &sink);
    if (!outcome.ok()) {
      state.SkipWithError(outcome.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(outcome->result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(persons));
}

void BM_ObsFixpointMetricsOn(benchmark::State& state) {
  RunObsFixpoint(state, /*metrics_on=*/true);
}
void BM_ObsFixpointMetricsOff(benchmark::State& state) {
  RunObsFixpoint(state, /*metrics_on=*/false);
}
BENCHMARK(BM_ObsFixpointMetricsOn)->Arg(256)->Arg(4096);
BENCHMARK(BM_ObsFixpointMetricsOff)->Arg(256)->Arg(4096);

void RunObsCommit(benchmark::State& state, bool metrics_on) {
  ScopedEnabled scoped(metrics_on);
  const size_t employees = static_cast<size_t>(state.range(0));
  auto conn_result = Connection::OpenInMemory();
  if (!conn_result.ok()) {
    state.SkipWithError(conn_result.status().ToString().c_str());
    return;
  }
  std::unique_ptr<Connection> conn = std::move(*conn_result);
  {
    ObjectBase base = conn->engine().MakeBase();
    EnterpriseOptions options;
    options.employees = employees;
    MakeEnterprise(options, conn->engine(), base);
    Status imported = conn->Import(base);
    if (!imported.ok()) {
      state.SkipWithError(imported.ToString().c_str());
      return;
    }
  }
  auto session = conn->OpenSession();
  Result<Statement> ins = session->Prepare("t: ins[emp0].flag -> on.");
  Result<Statement> del = session->Prepare("t: del[emp0].flag -> on.");
  if (!ins.ok() || !del.ok()) {
    state.SkipWithError("prepare failed");
    return;
  }
  // Two one-fact commits per iteration (insert then delete), so every
  // iteration exercises the full commit pipeline with a non-empty delta.
  for (auto _ : state) {
    Result<ResultSet> added = ins->Execute();
    Result<ResultSet> removed = del->Execute();
    if (!added.ok() || !removed.ok()) {
      state.SkipWithError("commit failed");
      return;
    }
    benchmark::DoNotOptimize(added->size());
    benchmark::DoNotOptimize(removed->size());
  }
  state.SetItemsProcessed(state.iterations() * 2);
}

void BM_ObsCommitMetricsOn(benchmark::State& state) {
  RunObsCommit(state, /*metrics_on=*/true);
}
void BM_ObsCommitMetricsOff(benchmark::State& state) {
  RunObsCommit(state, /*metrics_on=*/false);
}
BENCHMARK(BM_ObsCommitMetricsOn)->Arg(256)->Arg(4096);
BENCHMARK(BM_ObsCommitMetricsOff)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace verso::bench

BENCHMARK_MAIN();
