// Experiments E3 and E10 (Sections 2.1 and 2.4): the versioned semantics
// against the comparator semantics the paper discusses.
//
//  * E3 — the plain salary raise: versioned evaluation terminates in 2
//    rounds; the naive in-place semantics re-applies forever (measured
//    with a fixed round budget, so the numbers are comparable).
//  * E10 — the full enterprise update: versioned (control from VID
//    structure) vs Logres-style modules with hand-written guards
//    (the "manual means for control" of Section 2.4).
//
// Expected shape: comparable per-object cost, with the versioned run
// doing extra state copies but needing no guard facts and no module
// ordering; the naive run burns its whole round budget.

#include <benchmark/benchmark.h>

#include "baselines/baselines.h"
#include "bench_common.h"

namespace verso::bench {
namespace {

constexpr const char* kRaiseRule =
    "raise: mod[E].sal -> (S, S2) <- E.isa -> empl, E.sal -> S, "
    "S2 = S * 1.1.";

void BM_RaiseVersioned(benchmark::State& state) {
  const size_t employees = static_cast<size_t>(state.range(0));
  std::unique_ptr<World> world = MakeEnterpriseWorld(employees, kRaiseRule);
  uint32_t rounds = 0;
  for (auto _ : state) {
    RunOutcome outcome = MustRun(*world, state);
    rounds = outcome.stats.total_rounds();
    benchmark::DoNotOptimize(outcome.new_base);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(employees));
  state.counters["rounds"] = rounds;
  state.counters["terminated"] = 1;
}
BENCHMARK(BM_RaiseVersioned)->Arg(64)->Arg(256)->Arg(1024);

void BM_RaiseNaiveInPlace(benchmark::State& state) {
  const size_t employees = static_cast<size_t>(state.range(0));
  std::unique_ptr<World> world = MakeEnterpriseWorld(employees, kRaiseRule);
  InPlaceOptions options;
  options.max_rounds = 12;  // stays below exact-rational overflow
  bool diverged = false;
  uint32_t rounds = 0;
  for (auto _ : state) {
    Result<InPlaceOutcome> outcome =
        RunNaiveUpdate(world->program, world->base, world->engine->symbols(),
                       world->engine->versions(), options);
    if (!outcome.ok()) {
      state.SkipWithError(outcome.status().ToString().c_str());
      return;
    }
    diverged = outcome->diverged;
    rounds = outcome->rounds;
    benchmark::DoNotOptimize(outcome->base);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(employees));
  state.counters["rounds"] = rounds;
  state.counters["terminated"] = diverged ? 0 : 1;
}
BENCHMARK(BM_RaiseNaiveInPlace)->Arg(64)->Arg(256)->Arg(1024);

void BM_EnterpriseVersioned(benchmark::State& state) {
  const size_t employees = static_cast<size_t>(state.range(0));
  std::unique_ptr<World> world =
      MakeEnterpriseWorld(employees, kEnterpriseProgramText);
  for (auto _ : state) {
    RunOutcome outcome = MustRun(*world, state);
    benchmark::DoNotOptimize(outcome.new_base);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(employees));
}
BENCHMARK(BM_EnterpriseVersioned)->Arg(64)->Arg(256)->Arg(1024);

void BM_EnterpriseModularGuarded(benchmark::State& state) {
  const size_t employees = static_cast<size_t>(state.range(0));
  auto world = std::make_unique<World>();
  world->base = world->engine->MakeBase();
  EnterpriseOptions options;
  options.employees = employees;
  MakeEnterprise(options, *world->engine, world->base);

  std::vector<Program> modules;
  auto add = [&](const char* text) {
    Result<Program> m = ParseProgram(text, *world->engine);
    if (m.ok()) modules.push_back(std::move(m).value());
  };
  add("m1a: mod[E].sal -> (S, S2) <- E.isa -> empl / pos -> mgr / sal -> S,"
      " not E.raised -> yes, S2 = S * 1.1 + 200."
      "m1b: mod[E].sal -> (S, S2) <- E.isa -> empl / sal -> S,"
      " not E.pos -> mgr, not E.raised -> yes, S2 = S * 1.1."
      "m1c: ins[E].raised -> yes <- E.isa -> empl.");
  add("m2: del[E].* <- E.isa -> empl / boss -> B / sal -> SE,"
      " B.isa -> empl / sal -> SB, SE > SB.");
  add("m3: ins[E].isa -> hpe <- E.isa -> empl / sal -> S, S > 4500.");
  if (modules.size() != 3) {
    state.SkipWithError("module parse failed");
    return;
  }
  for (auto _ : state) {
    Result<InPlaceOutcome> outcome = RunModularUpdate(
        modules, world->base, world->engine->symbols(),
        world->engine->versions());
    if (!outcome.ok() || outcome->diverged) {
      state.SkipWithError("modular baseline failed");
      return;
    }
    benchmark::DoNotOptimize(outcome->base);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(employees));
}
BENCHMARK(BM_EnterpriseModularGuarded)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace verso::bench

BENCHMARK_MAIN();
