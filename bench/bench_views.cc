// Incremental view maintenance vs from-scratch recomputation: the point
// of src/views. A registered view absorbs one committed transaction's
// delta (counting for non-recursive strata, DRed for recursive ones);
// the baseline re-runs EvaluateQueries over the whole base. Expected
// shape: maintenance cost tracks the delta's footprint, recomputation
// cost tracks the base, so the gap widens with scale — the acceptance
// bar is >= 5x at 4096 objects with single-transaction deltas.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "query/query.h"
#include "views/view.h"

namespace verso::bench {
namespace {

// Enterprise views: a built-in filter (counting) plus the recursive chain
// of command (DRed).
constexpr const char* kEnterpriseViews = R"(
    q1: derive X.rich -> yes <- X.sal -> S, S > 5000.
    q2: derive X.chain -> Y <- X.boss -> Y.
    q3: derive X.chain -> Z <- X.chain -> Y, Y.boss -> Z.
)";

// Graph view: transitive closure (DRed).
constexpr const char* kGraphViews = R"(
    q1: derive X.reaches -> Y <- X.edge -> Y.
    q2: derive X.reaches -> Z <- X.reaches -> Y, Y.edge -> Z.
)";

ObjectBase MakeEnterpriseBase(Engine& engine, size_t employees) {
  ObjectBase base = engine.MakeBase();
  EnterpriseOptions options;
  options.employees = employees;
  MakeEnterprise(options, engine, base);
  return base;
}

ObjectBase MakeGraphBase(Engine& engine, size_t nodes) {
  ObjectBase base = engine.MakeBase();
  // Degree ~1 keeps the closure size linear-ish so the recompute baseline
  // finishes at 4096 nodes.
  MakeGraph(nodes, nodes, /*seed=*/5, engine, base);
  return base;
}

/// One single-transaction delta: flip `object.method` from `from` to `to`
/// (a mod-style change), alternating direction per iteration.
DeltaLog FlipDelta(Engine& engine, const std::string& object,
                   const char* method, Oid from, Oid to) {
  Vid vid = engine.versions().OfOid(engine.symbols().Symbol(object));
  MethodId m = engine.symbols().Method(method);
  GroundApp old_app;
  old_app.result = from;
  GroundApp new_app;
  new_app.result = to;
  return DeltaLog{{vid, m, old_app, /*added=*/false},
                  {vid, m, new_app, /*added=*/true}};
}

void BM_ViewMaintainEnterprise(benchmark::State& state) {
  const size_t employees = static_cast<size_t>(state.range(0));
  Engine engine;
  ObjectBase base = MakeEnterpriseBase(engine, employees);
  Result<QueryProgram> program =
      ParseQueryProgram(kEnterpriseViews, engine.symbols());
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }
  Result<std::unique_ptr<MaterializedView>> view = MaterializedView::Create(
      "enterprise", std::move(*program), base, engine.symbols(),
      engine.versions());
  if (!view.ok()) {
    state.SkipWithError(view.status().ToString().c_str());
    return;
  }

  // One employee's salary oscillates across the rich threshold: every
  // transaction exercises the counting stratum, while the recursive chain
  // stratum sees no relevant change and is skipped outright.
  Oid low = engine.symbols().Int(100);
  Oid high = engine.symbols().Int(9999);
  // Align the flip's starting point with the generated salary.
  const std::string subject = "emp1";
  Vid vid = engine.versions().OfOid(engine.symbols().Symbol(subject));
  MethodId sal = engine.symbols().Method("sal");
  GroundApp current = (*(*view)->result().StateOf(vid)->Find(sal))[0];
  DeltaLog to_low = FlipDelta(engine, subject, "sal", current.result, low);
  DeltaLog to_high = FlipDelta(engine, subject, "sal", low, high);
  DeltaLog back = FlipDelta(engine, subject, "sal", high, low);

  Status first = (*view)->ApplyBaseDelta(to_low);
  if (!first.ok()) {
    state.SkipWithError(first.ToString().c_str());
    return;
  }
  bool up = true;
  for (auto _ : state) {
    Status status = (*view)->ApplyBaseDelta(up ? to_high : back);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    up = !up;
    benchmark::DoNotOptimize((*view)->result());
  }
  state.counters["employees"] = static_cast<double>(employees);
  state.counters["view_facts"] =
      static_cast<double>((*view)->result().fact_count() - base.fact_count());
}
BENCHMARK(BM_ViewMaintainEnterprise)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096);

void BM_ViewRecomputeEnterprise(benchmark::State& state) {
  const size_t employees = static_cast<size_t>(state.range(0));
  Engine engine;
  ObjectBase base = MakeEnterpriseBase(engine, employees);
  Result<QueryProgram> program =
      ParseQueryProgram(kEnterpriseViews, engine.symbols());
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }
  // The same oscillating single-fact change, paid as a full recompute.
  Oid low = engine.symbols().Int(100);
  Oid high = engine.symbols().Int(9999);
  Vid vid = engine.versions().OfOid(engine.symbols().Symbol("emp1"));
  MethodId sal = engine.symbols().Method("sal");
  GroundApp current = (*base.StateOf(vid)->Find(sal))[0];
  base.Erase(vid, sal, current);
  GroundApp app;
  app.result = low;
  base.Insert(vid, sal, app);
  bool up = true;
  for (auto _ : state) {
    GroundApp old_app;
    old_app.result = up ? low : high;
    GroundApp new_app;
    new_app.result = up ? high : low;
    base.Erase(vid, sal, old_app);
    base.Insert(vid, sal, new_app);
    up = !up;
    Result<ObjectBase> out = EvaluateQueries(*program, base, engine);
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*out);
  }
  state.counters["employees"] = static_cast<double>(employees);
}
BENCHMARK(BM_ViewRecomputeEnterprise)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096);

void BM_ViewMaintainGraph(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  Engine engine;
  ObjectBase base = MakeGraphBase(engine, nodes);
  Result<QueryProgram> program =
      ParseQueryProgram(kGraphViews, engine.symbols());
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }
  Result<std::unique_ptr<MaterializedView>> view = MaterializedView::Create(
      "closure", std::move(*program), base, engine.symbols(),
      engine.versions());
  if (!view.ok()) {
    state.SkipWithError(view.status().ToString().c_str());
    return;
  }

  // One edge toggles on and off: insertion propagation one iteration,
  // overdelete + rederive the next.
  Vid from = engine.versions().OfOid(engine.symbols().Symbol("n1"));
  MethodId edge = engine.symbols().Method("edge");
  GroundApp app;
  app.result = engine.symbols().Symbol("n2");
  DeltaLog ins{{from, edge, app, /*added=*/true}};
  DeltaLog del{{from, edge, app, /*added=*/false}};
  bool present = (*view)->result().Contains(from, edge, app);
  for (auto _ : state) {
    Status status = (*view)->ApplyBaseDelta(present ? del : ins);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    present = !present;
    benchmark::DoNotOptimize((*view)->result());
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["overdeleted"] =
      static_cast<double>((*view)->stats().overdeleted);
  state.counters["rederived"] =
      static_cast<double>((*view)->stats().rederived);
}
BENCHMARK(BM_ViewMaintainGraph)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ViewRecomputeGraph(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  Engine engine;
  ObjectBase base = MakeGraphBase(engine, nodes);
  Result<QueryProgram> program =
      ParseQueryProgram(kGraphViews, engine.symbols());
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }
  Vid from = engine.versions().OfOid(engine.symbols().Symbol("n1"));
  MethodId edge = engine.symbols().Method("edge");
  GroundApp app;
  app.result = engine.symbols().Symbol("n2");
  bool present = base.Contains(from, edge, app);
  for (auto _ : state) {
    if (present) {
      base.Erase(from, edge, app);
    } else {
      base.Insert(from, edge, app);
    }
    present = !present;
    Result<ObjectBase> out = EvaluateQueries(*program, base, engine);
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*out);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_ViewRecomputeGraph)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace
}  // namespace verso::bench

BENCHMARK_MAIN();
