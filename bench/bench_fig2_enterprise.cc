// Experiment E2 (paper Figure 2 / Section 2.3 Example 1): the running
// enterprise update — raise salaries, fire over-earners, group the
// well-paid into hpe — scaled over synthetic enterprises.
//
// Regenerates Figure 2's process at the paper's own instance (2
// employees) and sweeps enterprise size; counters expose the per-run
// process metrics (updates derived, versions materialized, facts copied).
// Expected shape: near-linear in the number of employees; exactly 3
// strata with 2 fixpoint rounds each, independent of size.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace verso::bench {
namespace {

void BM_EnterpriseUpdate(benchmark::State& state) {
  const size_t employees = static_cast<size_t>(state.range(0));
  std::unique_ptr<World> world =
      MakeEnterpriseWorld(employees, kEnterpriseProgramText);
  EvalStats stats;
  size_t committed_facts = 0;
  for (auto _ : state) {
    RunOutcome outcome = MustRun(*world, state);
    stats = outcome.stats;
    committed_facts = outcome.new_base.fact_count();
    benchmark::DoNotOptimize(outcome.new_base);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(employees));
  state.counters["employees"] = static_cast<double>(employees);
  state.counters["strata"] = static_cast<double>(stats.strata.size());
  state.counters["rounds"] = static_cast<double>(stats.total_rounds());
  state.counters["t1_updates"] = static_cast<double>(stats.total_t1_updates());
  state.counters["versions"] =
      static_cast<double>(stats.versions_materialized);
  state.counters["committed_facts"] = static_cast<double>(committed_facts);
}
BENCHMARK(BM_EnterpriseUpdate)
    ->Arg(2)       // the paper's exact instance size
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096);

// The same update with the process trace attached, to price the
// observability hooks used to print Figure 2.
void BM_EnterpriseUpdateTraced(benchmark::State& state) {
  const size_t employees = static_cast<size_t>(state.range(0));
  std::unique_ptr<World> world =
      MakeEnterpriseWorld(employees, kEnterpriseProgramText);
  for (auto _ : state) {
    RecordingTrace trace(world->engine->symbols(), world->engine->versions());
    Result<RunOutcome> outcome = world->engine->Run(
        world->program, world->base, EvalOptions(), &trace);
    if (!outcome.ok()) {
      state.SkipWithError(outcome.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(trace.lines());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(employees));
}
BENCHMARK(BM_EnterpriseUpdateTraced)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace verso::bench

BENCHMARK_MAIN();
