// Store backend throughput (src/store) and the restart economics the
// subsystem exists for:
//
//   * put/get/scan per backend — the raw component API cost;
//   * BM_DatabaseCheckpoint — folding the committed base into the store;
//   * BM_ColdOpenCheckpointed vs BM_ColdOpenFullWalReplay — the headline:
//     after a checkpoint a cold Database::Open loads the store image and
//     replays only the WAL suffix, while an uncheckpointed directory
//     replays the full commit history (chunked imports + update churn),
//     so the checkpointed open must win clearly at 4096 objects.
//
// All I/O runs against a FaultInjectingEnv (in-memory, fault-free here):
// the benchmarks compare code paths, not disk hardware.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "parser/parser.h"
#include "storage/database.h"
#include "store/store.h"
#include "util/fault_env.h"

namespace verso::bench {
namespace {

constexpr const char* kDir = "/bench";

std::string Key(size_t i) { return "b/key" + std::to_string(i); }

std::unique_ptr<Store> MustOpen(StoreBackend backend, Env* env) {
  Result<std::unique_ptr<Store>> store = OpenStore(backend, kDir, env);
  return store.ok() ? std::move(store).value() : nullptr;
}

/// Preloads `n` keys with `value_bytes`-sized values, 64 per commit.
Status Preload(Store& store, size_t n, size_t value_bytes) {
  const std::string value(value_bytes, 'v');
  for (size_t i = 0; i < n;) {
    WriteTransaction txn = store.BeginWrite();
    for (size_t k = 0; k < 64 && i < n; ++k, ++i) txn.Put(Key(i), value);
    Status s = txn.Commit();
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

void BM_StorePut(benchmark::State& state, StoreBackend backend) {
  FaultInjectingEnv env;
  std::unique_ptr<Store> store = MustOpen(backend, &env);
  if (store == nullptr) {
    state.SkipWithError("open failed");
    return;
  }
  const size_t keys = static_cast<size_t>(state.range(0));
  const std::string value(128, 'v');
  size_t next = 0;
  for (auto _ : state) {
    // One transaction of 8 puts over a rotating key window: overwrites
    // dominate once the window wraps, so the page-log backend also pays
    // its compaction amortization here.
    WriteTransaction txn = store->BeginWrite();
    for (size_t k = 0; k < 8; ++k) {
      txn.Put(Key(next), value);
      next = (next + 1) % keys;
    }
    Status s = txn.Commit();
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK_CAPTURE(BM_StorePut, mem, StoreBackend::kMem)->Arg(256)->Arg(4096);
BENCHMARK_CAPTURE(BM_StorePut, pagelog, StoreBackend::kPageLog)
    ->Arg(256)
    ->Arg(4096);

void BM_StoreGet(benchmark::State& state, StoreBackend backend) {
  FaultInjectingEnv env;
  std::unique_ptr<Store> store = MustOpen(backend, &env);
  const size_t keys = static_cast<size_t>(state.range(0));
  if (store == nullptr || !Preload(*store, keys, 128).ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  ReadTransaction read = store->BeginRead();
  size_t next = 0;
  for (auto _ : state) {
    Result<std::string> value = store->Get(read, Key(next));
    if (!value.ok()) {
      state.SkipWithError(value.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*value);
    next = (next + 1) % keys;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_StoreGet, mem, StoreBackend::kMem)->Arg(256)->Arg(4096);
BENCHMARK_CAPTURE(BM_StoreGet, pagelog, StoreBackend::kPageLog)
    ->Arg(256)
    ->Arg(4096);

void BM_StoreScan(benchmark::State& state, StoreBackend backend) {
  FaultInjectingEnv env;
  std::unique_ptr<Store> store = MustOpen(backend, &env);
  const size_t keys = static_cast<size_t>(state.range(0));
  if (store == nullptr || !Preload(*store, keys, 128).ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  ReadTransaction read = store->BeginRead();
  for (auto _ : state) {
    size_t seen = 0;
    size_t bytes = 0;
    Status s = store->Scan(read, "b/",
                           [&](std::string_view, std::string_view value) {
                             ++seen;
                             bytes += value.size();
                             return Status::Ok();
                           });
    if (!s.ok() || seen != keys) {
      state.SkipWithError("scan failed");
      return;
    }
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(keys));
}
BENCHMARK_CAPTURE(BM_StoreScan, mem, StoreBackend::kMem)->Arg(256)->Arg(4096);
BENCHMARK_CAPTURE(BM_StoreScan, pagelog, StoreBackend::kPageLog)
    ->Arg(256)
    ->Arg(4096);

// ---- database-level restart economics --------------------------------------

/// Commits `objects` into a fresh database as 16 chunked imports plus
/// four full-base update-churn rounds, so the WAL carries ~5x the base in
/// replay work — the history a checkpoint folds away.
std::unique_ptr<Database> BuildHistory(FaultInjectingEnv& env, Engine& engine,
                                       StoreBackend backend, size_t objects) {
  DatabaseOptions options;
  options.env = &env;
  options.retry_backoff_us = 0;
  options.store_backend = backend;
  Result<std::unique_ptr<Database>> db = Database::Open(kDir, engine, options);
  if (!db.ok()) return nullptr;
  ObjectBase base = engine.MakeBase();
  const size_t chunk = (objects + 15) / 16;
  for (size_t done = 0; done < objects;) {
    for (size_t k = 0; k < chunk && done < objects; ++k, ++done) {
      std::string name = "o" + std::to_string(done);
      engine.AddFact(base, name, "isa", "thing");
      engine.AddFact(base, name, "sal",
                     static_cast<int64_t>(100 + (done % 977)));
    }
    if (!(*db)->ImportBase(base).ok()) return nullptr;
  }
  Result<Program> doubling = ParseProgram(
      "r: mod[E].sal -> (S, S2) <- E.isa -> thing, E.sal -> S, S2 = S * 2.",
      engine);
  Result<Program> halving = ParseProgram(
      "r: mod[E].sal -> (S, S2) <- E.isa -> thing, E.sal -> S, S2 = S / 2.",
      engine);
  if (!doubling.ok() || !halving.ok()) return nullptr;
  for (int round = 0; round < 4; ++round) {
    if (!(*db)->Execute(*doubling).ok() || !(*db)->Execute(*halving).ok()) {
      return nullptr;
    }
  }
  return std::move(db).value();
}

void BM_DatabaseCheckpoint(benchmark::State& state, StoreBackend backend) {
  FaultInjectingEnv env;
  Engine engine;
  std::unique_ptr<Database> db = BuildHistory(
      env, engine, backend, static_cast<size_t>(state.range(0)));
  if (db == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  for (auto _ : state) {
    Status s = db->Checkpoint();
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
  }
  state.counters["store_keys"] =
      static_cast<double>(db->store()->key_count());
}
BENCHMARK_CAPTURE(BM_DatabaseCheckpoint, mem, StoreBackend::kMem)
    ->Arg(256)
    ->Arg(4096);
BENCHMARK_CAPTURE(BM_DatabaseCheckpoint, pagelog, StoreBackend::kPageLog)
    ->Arg(256)
    ->Arg(4096);

void ColdOpen(benchmark::State& state, StoreBackend backend,
              bool checkpointed) {
  FaultInjectingEnv env;
  size_t facts = 0;
  {
    Engine engine;
    std::unique_ptr<Database> db = BuildHistory(
        env, engine, backend, static_cast<size_t>(state.range(0)));
    if (db == nullptr || (checkpointed && !db->Checkpoint().ok())) {
      state.SkipWithError("setup failed");
      return;
    }
    facts = db->current().fact_count();
  }
  DatabaseOptions options;
  options.env = &env;
  options.retry_backoff_us = 0;
  options.store_backend = backend;
  size_t replayed = 0;
  for (auto _ : state) {
    Engine engine;
    Result<std::unique_ptr<Database>> db =
        Database::Open(kDir, engine, options);
    if (!db.ok() || (*db)->current().fact_count() != facts) {
      state.SkipWithError("recovery failed");
      return;
    }
    replayed = (*db)->wal_records_since_checkpoint();
    benchmark::DoNotOptimize(db);
  }
  state.counters["replayed_frames"] = static_cast<double>(replayed);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(facts));
}

void BM_ColdOpenCheckpointed(benchmark::State& state, StoreBackend backend) {
  ColdOpen(state, backend, /*checkpointed=*/true);
}
void BM_ColdOpenFullWalReplay(benchmark::State& state, StoreBackend backend) {
  ColdOpen(state, backend, /*checkpointed=*/false);
}
BENCHMARK_CAPTURE(BM_ColdOpenCheckpointed, mem, StoreBackend::kMem)
    ->Arg(256)
    ->Arg(4096);
BENCHMARK_CAPTURE(BM_ColdOpenCheckpointed, pagelog, StoreBackend::kPageLog)
    ->Arg(256)
    ->Arg(4096);
BENCHMARK_CAPTURE(BM_ColdOpenFullWalReplay, mem, StoreBackend::kMem)
    ->Arg(256)
    ->Arg(4096);
BENCHMARK_CAPTURE(BM_ColdOpenFullWalReplay, pagelog, StoreBackend::kPageLog)
    ->Arg(256)
    ->Arg(4096);

}  // namespace
}  // namespace verso::bench

BENCHMARK_MAIN();
