// Experiment E4 (Section 2.3, Example 2): hypothetical reasoning — raise
// every salary, revise the raise right away, and answer `richest` from
// the middle versions.
//
// Each employee contributes three versions (e, mod(e), mod(mod(e))), so
// the expected shape is linear with a ~3x version constant relative to
// the plain raise; strata count is fixed at 4.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace verso::bench {
namespace {

void BM_HypotheticalRaise(benchmark::State& state) {
  const size_t employees = static_cast<size_t>(state.range(0));
  auto world = std::make_unique<World>();
  world->base = world->engine->MakeBase();
  Rng rng(17);
  for (size_t i = 0; i < employees; ++i) {
    std::string name = "e" + std::to_string(i);
    world->engine->AddFact(world->base, name, "isa", "empl");
    world->engine->AddFact(world->base, name, "sal",
                           static_cast<int64_t>(100 + rng.Below(900)));
    world->engine->AddFact(world->base, name, "factor",
                           static_cast<int64_t>(1 + rng.Below(4)));
  }
  Result<Program> program = ParseProgram(
      HypotheticalProgramText("e0"), *world->engine);
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }
  world->program = std::move(program).value();

  EvalStats stats;
  for (auto _ : state) {
    RunOutcome outcome = MustRun(*world, state);
    stats = outcome.stats;
    benchmark::DoNotOptimize(outcome.result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(employees));
  state.counters["employees"] = static_cast<double>(employees);
  state.counters["versions"] =
      static_cast<double>(stats.versions_materialized);
  state.counters["strata"] = static_cast<double>(stats.strata.size());
}
BENCHMARK(BM_HypotheticalRaise)->Arg(2)->Arg(64)->Arg(256)->Arg(1024)
    ->Arg(4096);

}  // namespace
}  // namespace verso::bench

BENCHMARK_MAIN();
