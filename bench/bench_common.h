#ifndef VERSO_BENCH_BENCH_COMMON_H_
#define VERSO_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <memory>
#include <stdexcept>

#include "core/engine.h"
#include "parser/parser.h"
#include "workloads/workloads.h"

namespace verso::bench {

/// Per-benchmark world: an engine, a generated object base, and a parsed
/// program; constructed once per benchmark (outside the timing loop).
struct World {
  std::unique_ptr<Engine> engine = std::make_unique<Engine>();
  ObjectBase base;
  Program program;

  World() : base(ObjectBase(MethodId(), nullptr)) {}
};

inline std::unique_ptr<World> MakeEnterpriseWorld(size_t employees,
                                                  const char* program_text,
                                                  size_t bystanders = 0,
                                                  uint64_t seed = 42) {
  auto world = std::make_unique<World>();
  world->base = world->engine->MakeBase();
  EnterpriseOptions options;
  options.employees = employees;
  options.bystanders = bystanders;
  options.seed = seed;
  MakeEnterprise(options, *world->engine, world->base);
  Result<Program> program = ParseProgram(program_text, *world->engine);
  if (!program.ok()) {
    throw std::runtime_error(program.status().ToString());
  }
  world->program = std::move(program).value();
  return world;
}

/// Runs the program and aborts the benchmark on error.
inline RunOutcome MustRun(World& world, benchmark::State& state,
                          EvalOptions options = EvalOptions()) {
  Result<RunOutcome> outcome =
      world.engine->Run(world.program, world.base, options);
  if (!outcome.ok()) {
    state.SkipWithError(outcome.status().ToString().c_str());
    return RunOutcome{world.engine->MakeBase(), world.engine->MakeBase(), {},
                      {}};
  }
  return std::move(outcome).value();
}

}  // namespace verso::bench

#endif  // VERSO_BENCH_BENCH_COMMON_H_
