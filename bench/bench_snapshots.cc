// Copy-on-write structural sharing (src/core/object_base.h): what a
// snapshot costs now that per-version state is a refcounted handle.
//
//   * Pin under ongoing commits: each commit invalidates the shared
//     snapshot, so the next session open rebuilds it — with COW that is
//     O(#versions) pointer bumps over the base and every view result;
//     the deep-copy baseline rebuilds all of them fact by fact (what
//     Connection::Pin effectively cost before sharing).
//   * T_P step-2 materialization: preparing an inactive target's state
//     copies v* — with COW, a method-list of pointer bumps plus a clone
//     of only the methods the updates write; the baseline clones every
//     application vector up front.
//
// The acceptance bar for the sharing PR: both COW paths >= 5x cheaper
// than their deep-copy baselines at 4096-object bases.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "api/api.h"

namespace verso::bench {
namespace {

/// N objects, each carrying 14 facts over 4 methods (argument-bearing
/// applications included, so a deep copy pays real allocation work).
void FillBase(Engine& engine, ObjectBase& base, size_t objects) {
  for (size_t i = 0; i < objects; ++i) {
    std::string name = "o" + std::to_string(i);
    engine.AddFact(base, name, "isa", "thing");
    engine.AddFact(base, name, "sal",
                   static_cast<int64_t>(1000 + (i % 977)));
    for (int64_t k = 0; k < 8; ++k) {
      engine.AddFact(base, name, "tag", {engine.symbols().Int(k)},
                     engine.symbols().Int(static_cast<int64_t>(i) + k));
    }
    for (int64_t k = 0; k < 4; ++k) {
      engine.AddFact(base, name, "ref",
                     engine.symbols().Symbol("o" + std::to_string(
                                                 (i + 17 * (k + 1)) % objects)));
    }
  }
}

constexpr const char* kRichView =
    "CREATE VIEW rich AS q: derive X.rich -> yes <- X.sal -> S, S > 1500.";
constexpr const char* kBumpTxn =
    "t: mod[o0].sal -> (S, S2) <- o0.sal -> S, S2 = S + 1.";

std::unique_ptr<Connection> SizedConnection(size_t objects) {
  Result<std::unique_ptr<Connection>> conn = Connection::OpenInMemory();
  if (!conn.ok()) return nullptr;
  ObjectBase base = (*conn)->engine().MakeBase();
  FillBase((*conn)->engine(), base, objects);
  if (!(*conn)->Import(base).ok()) return nullptr;
  std::unique_ptr<Session> session = (*conn)->OpenSession();
  if (!session->Execute(kRichView).ok()) return nullptr;
  return std::move(conn).value();
}

/// The pre-COW cost of one ObjectBase copy: every fact re-inserted.
ObjectBase DeepClone(const ObjectBase& base) {
  ObjectBase out(base.exists_method(), base.version_table());
  for (const auto& [vid, state] : base.versions()) {
    for (const auto& [method, apps] : state->methods()) {
      for (const GroundApp& app : apps) {
        out.Insert(vid, method, app);
      }
    }
  }
  return out;
}

/// The pre-COW cost of one T_P step-2 state copy.
VersionState DeepCloneState(const VersionState& state) {
  VersionState out;
  for (const auto& [method, apps] : state.methods()) {
    for (const GroundApp& app : apps) {
      out.Insert(method, app);
    }
  }
  return out;
}

/// Pin under ongoing commits, COW: every iteration commits (invalidating
/// the shared snapshot) outside the timed region, then times the session
/// open that rebuilds it — base + view result, shared structurally.
void BM_SnapPinUnderCommits(benchmark::State& state) {
  std::unique_ptr<Connection> conn = SizedConnection(state.range(0));
  if (conn == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  std::unique_ptr<Session> writer = conn->OpenSession();
  Result<Statement> bump = writer->Prepare(kBumpTxn);
  if (!bump.ok()) {
    state.SkipWithError(bump.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    state.PauseTiming();
    if (!bump->Execute().ok()) {
      state.SkipWithError("commit failed");
      return;
    }
    state.ResumeTiming();
    std::unique_ptr<Session> session = conn->OpenSession();
    benchmark::DoNotOptimize(session->epoch());
  }
  state.counters["base_facts"] = static_cast<double>(
      conn->database().current().fact_count());
}
BENCHMARK(BM_SnapPinUnderCommits)->Arg(256)->Arg(1024)->Arg(4096);

/// The deep-copy baseline for the same pin: clone the committed base and
/// the view result fact by fact, as the pre-sharing snapshot did.
void BM_SnapPinDeepCopyBaseline(benchmark::State& state) {
  std::unique_ptr<Connection> conn = SizedConnection(state.range(0));
  if (conn == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  std::unique_ptr<Session> writer = conn->OpenSession();
  Result<Statement> bump = writer->Prepare(kBumpTxn);
  if (!bump.ok()) {
    state.SkipWithError(bump.status().ToString().c_str());
    return;
  }
  const MaterializedView* rich = conn->catalog().Find("rich");
  for (auto _ : state) {
    state.PauseTiming();
    if (!bump->Execute().ok()) {
      state.SkipWithError("commit failed");
      return;
    }
    state.ResumeTiming();
    ObjectBase base_copy = DeepClone(conn->database().current());
    ObjectBase view_copy = DeepClone(rich->result());
    benchmark::DoNotOptimize(base_copy.fact_count());
    benchmark::DoNotOptimize(view_copy.fact_count());
  }
}
BENCHMARK(BM_SnapPinDeepCopyBaseline)->Arg(256)->Arg(1024)->Arg(4096);

/// T_P step 2+3 per target, COW: copy each version's state (pointer
/// bumps) and apply one insert (detaches just the written method).
void BM_SnapTpStep2Cow(benchmark::State& state) {
  Engine engine;
  ObjectBase base = engine.MakeBase();
  FillBase(engine, base, state.range(0));
  base.SealExistence();
  MethodId touched = engine.symbols().Method("touched");
  GroundApp yes;
  yes.result = engine.symbols().Symbol("yes");
  size_t facts = 0;
  for (auto _ : state) {
    for (const auto& [vid, vstate] : base.versions()) {
      VersionState copy = *vstate;  // step 2: materialize from v*
      copy.Insert(touched, yes);    // step 3: apply the derived update
      facts += copy.fact_count();
      benchmark::DoNotOptimize(facts);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(base.version_count()));
}
BENCHMARK(BM_SnapTpStep2Cow)->Arg(256)->Arg(1024)->Arg(4096);

/// The deep-copy baseline for step 2: clone every application vector of
/// v*'s state before applying the update (the pre-sharing behavior).
void BM_SnapTpStep2DeepCopyBaseline(benchmark::State& state) {
  Engine engine;
  ObjectBase base = engine.MakeBase();
  FillBase(engine, base, state.range(0));
  base.SealExistence();
  MethodId touched = engine.symbols().Method("touched");
  GroundApp yes;
  yes.result = engine.symbols().Symbol("yes");
  size_t facts = 0;
  for (auto _ : state) {
    for (const auto& [vid, vstate] : base.versions()) {
      VersionState copy = DeepCloneState(*vstate);
      copy.Insert(touched, yes);
      facts += copy.fact_count();
      benchmark::DoNotOptimize(facts);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(base.version_count()));
}
BENCHMARK(BM_SnapTpStep2DeepCopyBaseline)->Arg(256)->Arg(1024)->Arg(4096);

/// End-to-end sanity: one single-object update committed against an
/// N-object base. With sharing, the evaluator's working copy, the
/// rebuilt ob', and ComputeDelta are all O(changed), so this should
/// grow far slower than the base.
void BM_SnapCommitTouchingOneObject(benchmark::State& state) {
  std::unique_ptr<Connection> conn = SizedConnection(state.range(0));
  if (conn == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  std::unique_ptr<Session> writer = conn->OpenSession();
  Result<Statement> bump = writer->Prepare(kBumpTxn);
  if (!bump.ok()) {
    state.SkipWithError(bump.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    if (!bump->Execute().ok()) {
      state.SkipWithError("commit failed");
      return;
    }
  }
}
BENCHMARK(BM_SnapCommitTouchingOneObject)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace
}  // namespace verso::bench

BENCHMARK_MAIN();
