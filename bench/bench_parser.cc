// Experiment E11: front-end throughput — lexing/parsing update-programs
// and object bases, and the printer round-trip. Linear in input size.

#include <benchmark/benchmark.h>

#include <string>

#include "bench_common.h"
#include "core/pretty.h"
#include "parser/lexer.h"

namespace verso::bench {
namespace {

std::string BigProgram(int rules) {
  std::string text;
  for (int i = 0; i < rules; ++i) {
    std::string c = "c" + std::to_string(i);
    text += "r" + std::to_string(i) +
            ": mod[E].sal -> (S, S2) <- E.isa -> " + c +
            " / pos -> mgr / sal -> S, not E.tag -> done, "
            "S2 = S * 1.1 + 200.\n";
  }
  return text;
}

std::string BigBase(int objects) {
  std::string text;
  for (int i = 0; i < objects; ++i) {
    std::string name = "o" + std::to_string(i);
    text += name + ".isa -> empl / sal -> " + std::to_string(1000 + i) +
            " / boss -> o0.\n";
  }
  return text;
}

void BM_LexProgram(benchmark::State& state) {
  std::string text = BigProgram(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Result<std::vector<Token>> tokens = Lex(text);
    if (!tokens.ok()) {
      state.SkipWithError("lex failed");
      return;
    }
    benchmark::DoNotOptimize(*tokens);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_LexProgram)->Arg(16)->Arg(128)->Arg(1024);

void BM_ParseProgram(benchmark::State& state) {
  std::string text = BigProgram(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    SymbolTable symbols;
    Result<Program> program = ParseProgram(text, symbols);
    if (!program.ok()) {
      state.SkipWithError("parse failed");
      return;
    }
    benchmark::DoNotOptimize(*program);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_ParseProgram)->Arg(16)->Arg(128)->Arg(1024);

void BM_ParseObjectBase(benchmark::State& state) {
  std::string text = BigBase(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Engine engine;
    Result<ObjectBase> base = ParseObjectBase(text, engine);
    if (!base.ok()) {
      state.SkipWithError("parse failed");
      return;
    }
    benchmark::DoNotOptimize(*base);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_ParseObjectBase)->Arg(64)->Arg(512)->Arg(4096);

void BM_PrintObjectBase(benchmark::State& state) {
  Engine engine;
  Result<ObjectBase> base =
      ParseObjectBase(BigBase(static_cast<int>(state.range(0))), engine);
  if (!base.ok()) {
    state.SkipWithError("parse failed");
    return;
  }
  for (auto _ : state) {
    std::string printed =
        ObjectBaseToString(*base, engine.symbols(), engine.versions());
    benchmark::DoNotOptimize(printed);
  }
}
BENCHMARK(BM_PrintObjectBase)->Arg(64)->Arg(512)->Arg(4096);

}  // namespace
}  // namespace verso::bench

BENCHMARK_MAIN();
