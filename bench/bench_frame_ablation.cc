// Experiment E7 (Section 3, footnote 4 — the frame problem): "by copying
// old states only for the objects being updated (and not the whole
// object-base), we keep the unavoidable overhead low."
//
// Fixed object-base size, sweep the fraction of objects an update
// touches. Expected shape: run time and copied-fact volume scale with
// the touched fraction, not with the base size — the copied_facts
// counter is the direct measurement of the footnote's claim.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace verso::bench {
namespace {

void BM_FrameSelectivity(benchmark::State& state) {
  const size_t total = 4096;
  const size_t touched_percent = static_cast<size_t>(state.range(0));
  auto world = std::make_unique<World>();
  world->base = world->engine->MakeBase();
  // `hot` objects get updated; the rest are frame.
  const size_t hot = total * touched_percent / 100;
  for (size_t i = 0; i < total; ++i) {
    std::string name = "o" + std::to_string(i);
    world->engine->AddFact(world->base, name, "isa",
                           i < hot ? "hot" : "cold");
    world->engine->AddFact(world->base, name, "v", static_cast<int64_t>(i));
    world->engine->AddFact(world->base, name, "w", static_cast<int64_t>(i));
    world->engine->AddFact(world->base, name, "x", static_cast<int64_t>(i));
  }
  Result<Program> program = ParseProgram(
      "r: mod[E].v -> (V, V2) <- E.isa -> hot, E.v -> V, V2 = V + 1.",
      *world->engine);
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }
  world->program = std::move(program).value();

  EvalStats stats;
  for (auto _ : state) {
    RunOutcome outcome = MustRun(*world, state);
    stats = outcome.stats;
    benchmark::DoNotOptimize(outcome.new_base);
  }
  size_t copied = 0;
  for (const StratumStats& s : stats.strata) copied += s.copied_facts;
  state.counters["objects"] = static_cast<double>(total);
  state.counters["touched"] = static_cast<double>(hot);
  state.counters["copied_facts"] = static_cast<double>(copied);
  state.counters["versions"] =
      static_cast<double>(stats.versions_materialized);
}
BENCHMARK(BM_FrameSelectivity)->Arg(1)->Arg(5)->Arg(10)->Arg(25)->Arg(50)
    ->Arg(100);

// The contrast case footnote 4 argues against: force a whole-base "copy"
// by touching every object with a no-effect modify. Same base size, 100%
// touched — compare against BM_FrameSelectivity/1 to see the saving.
void BM_FrameWholeBaseTouch(benchmark::State& state) {
  const size_t total = 4096;
  auto world = std::make_unique<World>();
  world->base = world->engine->MakeBase();
  for (size_t i = 0; i < total; ++i) {
    std::string name = "o" + std::to_string(i);
    world->engine->AddFact(world->base, name, "v", static_cast<int64_t>(i));
    world->engine->AddFact(world->base, name, "w", static_cast<int64_t>(i));
    world->engine->AddFact(world->base, name, "x", static_cast<int64_t>(i));
  }
  Result<Program> program = ParseProgram(
      "r: mod[E].v -> (V, V) <- E.v -> V.", *world->engine);
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }
  world->program = std::move(program).value();
  for (auto _ : state) {
    RunOutcome outcome = MustRun(*world, state);
    benchmark::DoNotOptimize(outcome.new_base);
  }
  state.counters["objects"] = static_cast<double>(total);
}
BENCHMARK(BM_FrameWholeBaseTouch);

}  // namespace
}  // namespace verso::bench

BENCHMARK_MAIN();
